// Package comm is the communication substrate of SympleGraph-Go. It plays
// the role MPI plays in the paper's implementation (§6): point-to-point
// messaging between the machines of a cluster, simple collectives
// (barrier, all-reduce), and per-kind byte accounting.
//
// Two transports are provided. MemCluster connects N simulated machines in
// one process through channels — the default for experiments, benchmarks
// and tests. TCPCluster connects endpoints over real sockets (loopback or
// LAN) with length-prefixed frames. Both serialize every message to bytes,
// so communication-volume measurements (Table 6 of the paper) are
// identical across transports.
//
// Messages carry a Kind so that the paper's two traffic classes — update
// communication (mirror→master partial aggregates) and dependency
// communication (the circulating skip bitmaps SympleGraph adds) — are
// tallied separately, plus a Control kind for collectives.
package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bufpool"
)

// NodeID identifies a machine within a cluster, in [0, N).
type NodeID int

// Kind classifies message traffic for accounting and demultiplexing.
type Kind uint8

const (
	// KindUpdate is mirror→master update communication: the partial
	// signal results existing frameworks already send.
	KindUpdate Kind = iota
	// KindDependency is the dependency communication SympleGraph adds:
	// skip bitmaps and data-dependency payloads circulating the ring.
	KindDependency
	// KindControl is framework-internal traffic: barriers, reductions,
	// frontier exchanges and termination votes.
	KindControl
	numKinds
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindUpdate:
		return "update"
	case KindDependency:
		return "dependency"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is a unit of communication. Tag disambiguates messages of the
// same kind between the same pair of nodes (the engine uses step and
// iteration numbers); a mismatch indicates a protocol bug and surfaces as
// a *ProtocolError at the receiver.
//
// A received Message leases its payload: once the receiver has consumed
// (or copied out) the bytes it needs, Release returns the backing array
// to the payload slab (internal/bufpool) for the next superstep's
// frames. Release is always safe — payloads the transport does not own
// (aliased plain-Send deliveries on the memory transport) make it a
// no-op — but after calling it the payload must not be touched again;
// the sgvet bufown analyzer polices that invariant. Receivers that
// retain the payload (collective results handed to algorithms) simply
// never Release.
type Message struct {
	From    NodeID
	Kind    Kind
	Tag     int32
	Payload []byte

	// pooled marks a payload the transport owns outright (hand-off via
	// SendBufs, or a slab-backed TCP read); only those return to the
	// slab on Release.
	pooled bool
}

// Release returns the payload to the slab when the transport owned it
// and poisons the message against reuse. Idempotent; safe on the zero
// Message.
func (m *Message) Release() {
	if m.pooled && m.Payload != nil {
		bufpool.Put(m.Payload)
	}
	m.pooled = false
	m.Payload = nil
}

// Buffers is a vectored message payload: the frame on the wire (and the
// payload the receiver sees) is the concatenation of the elements.
// Handing a Buffers to SendBufs passes ownership of every element to
// the transport — the caller must not retain, reuse or mutate them
// afterwards (bufown lints this); the transport recycles them through
// internal/bufpool once the frame is delivered or abandoned. Elements
// may be empty; a nil Buffers is an empty frame.
type Buffers [][]byte

// TotalLen returns the summed length of all elements.
func (b Buffers) TotalLen() int {
	n := 0
	for _, buf := range b {
		n += len(buf)
	}
	return n
}

// release returns every element to the slab — the transport-side
// disposal for frames that were copied or dropped rather than handed
// off. Elements with foreign capacities are left to the GC by the pool.
func (b Buffers) release() {
	for _, buf := range b {
		if buf != nil {
			bufpool.Put(buf)
		}
	}
}

// headerBytes is the accounted per-message overhead: from(4) kind(1)
// tag(4) length(4), matching the TCP frame encoding so both transports
// report identical volumes.
const headerBytes = 13

// Endpoint is one machine's connection to the cluster.
//
// SendBufs is the data plane's primary send: a vectored frame whose
// buffers the transport takes ownership of — written with writev (no
// intermediate concatenation) on TCP, handed off by reference on the
// memory transport — and recycles through the payload slab after
// delivery. Send is the legacy convenience wrapper for single-buffer
// callers whose payload the transport may alias but does not own (the
// caller still must not mutate it after the call).
//
// Sends may block if the destination's inbox is full (memory transport)
// or the socket buffer is full (TCP); the engine's communication
// protocol is deadlock-free because every send has a matching posted
// receive within the same superstep. Recv blocks until a message with
// the given source and kind arrives, and returns a *ProtocolError if
// its tag does not match — tags are a protocol assertion, not a
// selection mechanism — or a *ClosedError if the endpoint shut down
// while the receive was pending. Received messages are leases: see
// Message.Release.
//
// Concurrent Recv calls are safe as long as no two goroutines receive the
// same (from, kind) pair concurrently, which the engine guarantees by
// dedicating dependency traffic to the coordinator goroutine (§6 of the
// paper: "a dependency communication coordinator thread").
type Endpoint interface {
	// ID returns this endpoint's node ID.
	ID() NodeID
	// N returns the cluster size.
	N() int
	// Send delivers payload to node `to`. The payload may be aliased by
	// the transport after the call and must not be mutated or reused by
	// the caller.
	Send(to NodeID, kind Kind, tag int32, payload []byte) error
	// SendBufs delivers the concatenation of bufs to node `to`,
	// transferring ownership of every buffer to the transport.
	SendBufs(to NodeID, kind Kind, tag int32, bufs Buffers) error
	// Recv returns the next message from `from` of kind `kind`,
	// blocking as needed.
	Recv(from NodeID, kind Kind, tag int32) (Message, error)
	// Stats returns this endpoint's traffic counters.
	Stats() *Stats
	// Close releases transport resources. The endpoint is unusable
	// afterwards.
	Close() error
}

// DeadlineRecver is the optional deadline-receive capability. Both
// built-in transports (and FaultPlan wrappers around them) implement it;
// the engine uses it to turn an indefinitely stalled superstep into a
// structured error. A non-positive timeout blocks like Recv.
type DeadlineRecver interface {
	RecvTimeout(from NodeID, kind Kind, tag int32, timeout time.Duration) (Message, error)
}

// RecvTimeout performs a deadline receive when e supports it, falling
// back to a plain blocking Recv otherwise (or when timeout <= 0). The
// error is a *TimeoutError when the deadline expired.
func RecvTimeout(e Endpoint, from NodeID, kind Kind, tag int32, timeout time.Duration) (Message, error) {
	if dr, ok := e.(DeadlineRecver); ok && timeout > 0 {
		return dr.RecvTimeout(from, kind, tag, timeout)
	}
	return e.Recv(from, kind, tag)
}

// StepObserver is the optional superstep-progress capability: the engine
// announces each edge-processing pass so step-keyed fault rules (crash at
// superstep k, partition windows) fire deterministically. Transports
// without fault injection ignore it.
type StepObserver interface {
	ObserveSuperstep(step int)
}

// ObserveSuperstep forwards a superstep announcement to e when it cares.
func ObserveSuperstep(e Endpoint, step int) {
	if so, ok := e.(StepObserver); ok {
		so.ObserveSuperstep(step)
	}
}

// demux routes incoming messages to per-(from, kind) queues so that
// concurrent receivers of disjoint streams never contend, mirroring the
// paper's separation of worker (update) and coordinator (dependency)
// threads.
type demux struct {
	self   NodeID // owning endpoint, for error context
	n      int
	mu     sync.Mutex
	queues map[demuxKey]chan Message
	done   chan struct{} // closed on shutdown; the data queues never are
	closed bool
}

type demuxKey struct {
	from NodeID
	kind Kind
}

func newDemux(self NodeID, n int) *demux {
	return &demux{
		self:   self,
		n:      n,
		queues: make(map[demuxKey]chan Message),
		done:   make(chan struct{}),
	}
}

// queueCap bounds each (from, kind) stream. The engine protocol keeps at
// most a handful of in-flight messages per stream (double buffering sends
// a few group frames ahead); 1024 gives slack without unbounded memory.
const queueCap = 1024

func (d *demux) queue(from NodeID, kind Kind) chan Message {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := demuxKey{from, kind}
	q, ok := d.queues[key]
	if !ok {
		q = make(chan Message, queueCap)
		d.queues[key] = q
	}
	return q
}

// deliver enqueues m, blocking under backpressure until the receiver
// drains or the endpoint shuts down. Shutdown drops the message: a
// poisoned run closes endpoints precisely to unblock peers mid-Send, so
// deliveries racing the close are abandoned, not delivered.
func (d *demux) deliver(m Message) {
	select {
	case d.queue(m.From, m.Kind) <- m:
	case <-d.done:
	}
}

// recv is the one deadline-aware receive implementation every built-in
// transport (and the fault wrapper above them) funnels through: the
// leased-receive semantics — tag assertion, closed-inbox drain, timeout
// classification, payload lease intact as delivered — are defined here
// and nowhere else. A non-positive timeout blocks indefinitely.
func (d *demux) recv(from NodeID, kind Kind, tag int32, timeout time.Duration) (Message, error) {
	q := d.queue(from, kind)
	// Fast path: a message is already queued (also the only path a
	// zero-timeout caller should pay a timer for — it never does).
	select {
	case m := <-q:
		return d.checkTag(m, from, kind, tag)
	default:
	}
	if timeout <= 0 {
		select {
		case m := <-q:
			return d.checkTag(m, from, kind, tag)
		case <-d.done:
			return d.drain(q, from, kind, tag)
		}
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case m := <-q:
		return d.checkTag(m, from, kind, tag)
	case <-d.done:
		return d.drain(q, from, kind, tag)
	case <-t.C:
		return Message{}, &TimeoutError{Node: d.self, From: from, Kind: kind, Tag: tag, Timeout: timeout}
	}
}

// drain gives messages enqueued before shutdown one last chance to be
// received — a closed demux refuses new deliveries but does not discard
// what already arrived.
func (d *demux) drain(q chan Message, from NodeID, kind Kind, tag int32) (Message, error) {
	select {
	case m := <-q:
		return d.checkTag(m, from, kind, tag)
	default:
		return Message{}, &ClosedError{Node: d.self, From: from, Kind: kind}
	}
}

// recvInbox is the shared receive half of the built-in transports: both
// memEndpoint and TCPEndpoint embed it, so Recv and RecvTimeout have
// exactly one definition, delegating to the demux's deadline-aware
// receive.
type recvInbox struct {
	inbox *demux
}

// Recv implements Endpoint.
func (r *recvInbox) Recv(from NodeID, kind Kind, tag int32) (Message, error) {
	return r.inbox.recv(from, kind, tag, 0)
}

// RecvTimeout implements DeadlineRecver.
func (r *recvInbox) RecvTimeout(from NodeID, kind Kind, tag int32, timeout time.Duration) (Message, error) {
	return r.inbox.recv(from, kind, tag, timeout)
}

func (d *demux) checkTag(m Message, from NodeID, kind Kind, tag int32) (Message, error) {
	if m.Tag != tag {
		return Message{}, &ProtocolError{Node: d.self, From: from, Kind: kind, WantTag: tag, GotTag: m.Tag}
	}
	return m, nil
}

func (d *demux) close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	close(d.done)
}
