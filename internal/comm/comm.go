// Package comm is the communication substrate of SympleGraph-Go. It plays
// the role MPI plays in the paper's implementation (§6): point-to-point
// messaging between the machines of a cluster, simple collectives
// (barrier, all-reduce), and per-kind byte accounting.
//
// Two transports are provided. MemCluster connects N simulated machines in
// one process through channels — the default for experiments, benchmarks
// and tests. TCPCluster connects endpoints over real sockets (loopback or
// LAN) with length-prefixed frames. Both serialize every message to bytes,
// so communication-volume measurements (Table 6 of the paper) are
// identical across transports.
//
// Messages carry a Kind so that the paper's two traffic classes — update
// communication (mirror→master partial aggregates) and dependency
// communication (the circulating skip bitmaps SympleGraph adds) — are
// tallied separately, plus a Control kind for collectives.
package comm

import (
	"fmt"
	"sync"
)

// NodeID identifies a machine within a cluster, in [0, N).
type NodeID int

// Kind classifies message traffic for accounting and demultiplexing.
type Kind uint8

const (
	// KindUpdate is mirror→master update communication: the partial
	// signal results existing frameworks already send.
	KindUpdate Kind = iota
	// KindDependency is the dependency communication SympleGraph adds:
	// skip bitmaps and data-dependency payloads circulating the ring.
	KindDependency
	// KindControl is framework-internal traffic: barriers, reductions,
	// frontier exchanges and termination votes.
	KindControl
	numKinds
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindUpdate:
		return "update"
	case KindDependency:
		return "dependency"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is a unit of communication. Tag disambiguates messages of the
// same kind between the same pair of nodes (the engine uses step and
// iteration numbers); a mismatch indicates a protocol bug and panics at
// the receiver.
type Message struct {
	From    NodeID
	Kind    Kind
	Tag     int32
	Payload []byte
}

// headerBytes is the accounted per-message overhead: from(4) kind(1)
// tag(4) length(4), matching the TCP frame encoding so both transports
// report identical volumes.
const headerBytes = 13

// Endpoint is one machine's connection to the cluster.
//
// Send may block if the destination's inbox is full (memory transport) or
// the socket buffer is full (TCP); the engine's communication protocol is
// deadlock-free because every send has a matching posted receive within
// the same superstep. Recv blocks until a message with the given source
// and kind arrives, and panics if its tag does not match — tags are a
// protocol assertion, not a selection mechanism.
//
// Concurrent Recv calls are safe as long as no two goroutines receive the
// same (from, kind) pair concurrently, which the engine guarantees by
// dedicating dependency traffic to the coordinator goroutine (§6 of the
// paper: "a dependency communication coordinator thread").
type Endpoint interface {
	// ID returns this endpoint's node ID.
	ID() NodeID
	// N returns the cluster size.
	N() int
	// Send delivers payload to node `to`. The payload is owned by the
	// transport after the call and must not be reused by the caller.
	Send(to NodeID, kind Kind, tag int32, payload []byte) error
	// Recv returns the next message from `from` of kind `kind`,
	// blocking as needed.
	Recv(from NodeID, kind Kind, tag int32) (Message, error)
	// Stats returns this endpoint's traffic counters.
	Stats() *Stats
	// Close releases transport resources. The endpoint is unusable
	// afterwards.
	Close() error
}

// demux routes incoming messages to per-(from, kind) queues so that
// concurrent receivers of disjoint streams never contend, mirroring the
// paper's separation of worker (update) and coordinator (dependency)
// threads.
type demux struct {
	n      int
	mu     sync.Mutex
	queues map[demuxKey]chan Message
	closed bool
}

type demuxKey struct {
	from NodeID
	kind Kind
}

func newDemux(n int) *demux {
	return &demux{n: n, queues: make(map[demuxKey]chan Message)}
}

// queueCap bounds each (from, kind) stream. The engine protocol keeps at
// most a handful of in-flight messages per stream (double buffering sends
// a few group frames ahead); 1024 gives slack without unbounded memory.
const queueCap = 1024

func (d *demux) queue(from NodeID, kind Kind) chan Message {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := demuxKey{from, kind}
	q, ok := d.queues[key]
	if !ok {
		q = make(chan Message, queueCap)
		if d.closed {
			close(q)
		}
		d.queues[key] = q
	}
	return q
}

func (d *demux) deliver(m Message) { d.queue(m.From, m.Kind) <- m }

func (d *demux) recv(from NodeID, kind Kind, tag int32) (Message, error) {
	m, ok := <-d.queue(from, kind)
	if !ok {
		return Message{}, fmt.Errorf("comm: endpoint closed while receiving from %d kind %v", from, kind)
	}
	if m.Tag != tag {
		panic(fmt.Sprintf("comm: protocol violation: received tag %d from node %d kind %v, expected %d",
			m.Tag, from, kind, tag))
	}
	return m, nil
}

func (d *demux) close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	for _, q := range d.queues {
		close(q)
	}
}
