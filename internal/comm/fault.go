package comm

import (
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// FaultPlan is a deterministic, seed-driven fault schedule layered over
// any Endpoint — the test substrate for every resilience claim the
// engine makes. All randomness is counter-mode (xrand keyed on Seed, the
// node, and a per-endpoint operation index), so a plan replayed against
// the same protocol injects the same fault sequence; no global rand
// state, no wall-clock dependence.
//
// Four fault classes are supported, matching how a ring-synchronized
// engine actually suffers in production:
//
//   - delay spikes: a slow peer (GC pause, noisy neighbor) every machine
//     in the circulant ring stalls behind;
//   - transient send errors: a dropped connection write a retrying
//     caller would survive (*InjectedError);
//   - partition windows: traffic between a node pair silently dropped or
//     failed during a superstep window — the substrate for stall tests;
//   - crash at superstep k: one node dies mid-run (*CrashError from
//     every subsequent operation). A crash fires at most once per plan,
//     so a recovery re-run against the same plan proceeds fault-free —
//     exactly the "machine replaced, cluster re-formed" scenario.
//
// The zero value injects nothing. Plans are safe for concurrent use by
// the endpoints of one cluster.
type FaultPlan struct {
	// Seed drives every fault draw. Two runs with the same seed, plan
	// and protocol observe identical faults.
	Seed uint64

	// DelayProb is the per-send probability of a delay spike of Delay.
	DelayProb float64
	Delay     time.Duration

	// SendErrProb is the per-send probability of a transient
	// *InjectedError (the payload is not delivered).
	SendErrProb float64

	// Partitions lists node-pair windows during which traffic is cut.
	Partitions []PartitionWindow

	// CrashNode dies when its superstep counter reaches CrashAtSuperstep
	// (engine edge-processing passes, announced via ObserveSuperstep).
	// CrashAtSuperstep <= 0 disables crashing.
	CrashNode        NodeID
	CrashAtSuperstep int

	counters   FaultCounters
	crashFired atomic.Bool
}

// PartitionWindow cuts traffic between nodes A and B (both directions)
// while either side's superstep counter is in [FromStep, ToStep).
// Drop=true silently discards the messages — the receiver stalls, which
// is what deadline receives must detect; Drop=false fails the send with
// an *InjectedError instead, which the sender sees immediately.
type PartitionWindow struct {
	A, B     NodeID
	FromStep int
	ToStep   int
	Drop     bool
}

// FaultCounters tallies injected faults, for observability surfaces and
// test assertions. Read with FaultPlan.Counters.
type FaultCounters struct {
	Delays   int64
	SendErrs int64
	Drops    int64
	Crashes  int64
}

// Counters returns a snapshot of the faults injected so far.
func (p *FaultPlan) Counters() FaultCounters {
	return FaultCounters{
		Delays:   atomic.LoadInt64(&p.counters.Delays),
		SendErrs: atomic.LoadInt64(&p.counters.SendErrs),
		Drops:    atomic.LoadInt64(&p.counters.Drops),
		Crashes:  atomic.LoadInt64(&p.counters.Crashes),
	}
}

// CrashFired reports whether the plan's crash has been consumed.
func (p *FaultPlan) CrashFired() bool { return p.crashFired.Load() }

// Wrap layers the plan over every endpoint of a cluster. The returned
// endpoints share the plan's counters and one-shot crash state, so
// re-wrapping fresh endpoints after a recovery keeps the history.
func (p *FaultPlan) Wrap(eps []Endpoint) []Endpoint {
	out := make([]Endpoint, len(eps))
	for i, ep := range eps {
		out[i] = p.WrapOne(ep)
	}
	return out
}

// WrapOne layers the plan over a single endpoint (the distributed-mode
// entry point, where each process hosts one machine).
func (p *FaultPlan) WrapOne(ep Endpoint) Endpoint {
	return &faultEndpoint{inner: ep, plan: p}
}

// faultEndpoint interposes the plan on one endpoint. It implements
// Endpoint, DeadlineRecver and StepObserver, forwarding to the wrapped
// transport after the fault draw.
type faultEndpoint struct {
	inner Endpoint
	plan  *FaultPlan

	step    atomic.Int64 // engine superstep, via ObserveSuperstep
	sendOp  atomic.Int64 // per-endpoint send index, the fault-draw counter
	crashed atomic.Bool
}

func (e *faultEndpoint) ID() NodeID    { return e.inner.ID() }
func (e *faultEndpoint) N() int        { return e.inner.N() }
func (e *faultEndpoint) Stats() *Stats { return e.inner.Stats() }
func (e *faultEndpoint) Close() error  { return e.inner.Close() }

// ObserveSuperstep implements StepObserver: it advances the step counter
// and fires the plan's crash when this node's time has come.
func (e *faultEndpoint) ObserveSuperstep(step int) {
	e.step.Store(int64(step))
	p := e.plan
	if p.CrashAtSuperstep > 0 && e.inner.ID() == p.CrashNode && step >= p.CrashAtSuperstep {
		if p.crashFired.CompareAndSwap(false, true) {
			atomic.AddInt64(&p.counters.Crashes, 1)
			e.crashed.Store(true)
		}
	}
	ObserveSuperstep(e.inner, step)
}

func (e *faultEndpoint) crashErr() error {
	return &CrashError{Node: e.inner.ID(), Superstep: int(e.step.Load())}
}

// partitioned reports whether traffic to/from peer is cut right now, and
// whether the cut drops silently.
func (e *faultEndpoint) partitioned(peer NodeID) (cut, drop bool) {
	step := int(e.step.Load())
	id := e.inner.ID()
	for _, w := range e.plan.Partitions {
		pair := (w.A == id && w.B == peer) || (w.B == id && w.A == peer)
		if pair && step >= w.FromStep && step < w.ToStep {
			return true, w.Drop
		}
	}
	return false, false
}

// sendFault runs the per-send fault draws shared by Send and SendBufs:
// crash check, delay spike, partition cut, transient error. swallow
// means the frame is silently discarded (a dropping partition) — the
// caller reports success but delivers nothing.
func (e *faultEndpoint) sendFault(to NodeID) (swallow bool, err error) {
	if e.crashed.Load() {
		return false, e.crashErr()
	}
	p := e.plan
	op := e.sendOp.Add(1)
	id := uint64(e.inner.ID())
	if p.DelayProb > 0 && xrand.Uniform01(p.Seed, id, uint64(op), 0xde1a7) < p.DelayProb {
		atomic.AddInt64(&p.counters.Delays, 1)
		time.Sleep(p.Delay)
	}
	if cut, drop := e.partitioned(to); cut {
		if drop {
			atomic.AddInt64(&p.counters.Drops, 1)
			return true, nil // swallowed: the receiver sees nothing, ever
		}
		atomic.AddInt64(&p.counters.SendErrs, 1)
		return false, &InjectedError{Node: e.inner.ID(), To: to, Op: op}
	}
	if p.SendErrProb > 0 && xrand.Uniform01(p.Seed, id, uint64(op), 0x5e2d) < p.SendErrProb {
		atomic.AddInt64(&p.counters.SendErrs, 1)
		return false, &InjectedError{Node: e.inner.ID(), To: to, Op: op}
	}
	return false, nil
}

func (e *faultEndpoint) Send(to NodeID, kind Kind, tag int32, payload []byte) error {
	swallow, err := e.sendFault(to)
	if err != nil || swallow {
		return err
	}
	return e.inner.Send(to, kind, tag, payload)
}

// SendBufs implements Endpoint. Ownership of bufs passes to the
// transport even when the fault plan drops or fails the frame: the
// buffers return to the slab rather than leaking, matching what a real
// transport cut does to bytes already handed to the kernel.
func (e *faultEndpoint) SendBufs(to NodeID, kind Kind, tag int32, bufs Buffers) error {
	swallow, err := e.sendFault(to)
	if err != nil || swallow {
		bufs.release()
		return err
	}
	return e.inner.SendBufs(to, kind, tag, bufs)
}

// recv is the single crash-checking receive path behind both Recv and
// RecvTimeout; the deadline semantics themselves live in demux.recv.
func (e *faultEndpoint) recv(from NodeID, kind Kind, tag int32, timeout time.Duration) (Message, error) {
	if e.crashed.Load() {
		return Message{}, e.crashErr()
	}
	if timeout > 0 {
		return RecvTimeout(e.inner, from, kind, tag, timeout)
	}
	return e.inner.Recv(from, kind, tag)
}

func (e *faultEndpoint) Recv(from NodeID, kind Kind, tag int32) (Message, error) {
	return e.recv(from, kind, tag, 0)
}

// RecvTimeout implements DeadlineRecver over the wrapped transport.
func (e *faultEndpoint) RecvTimeout(from NodeID, kind Kind, tag int32, timeout time.Duration) (Message, error) {
	return e.recv(from, kind, tag, timeout)
}
