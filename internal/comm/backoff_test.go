package comm

import (
	"errors"
	"testing"
	"time"
)

func TestBackoffDelayGrowsToCapWithJitter(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Key: 7}
	for attempt := uint64(0); attempt < 8; attempt++ {
		d := b.Delay(attempt)
		// Full jitter keeps every delay in [grown/2, grown); the grown
		// value is min(base<<attempt, cap).
		grown := b.Base << attempt
		if grown > b.Cap {
			grown = b.Cap
		}
		if d < grown/2 || d >= grown {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, grown/2, grown)
		}
	}
}

func TestBackoffDeterministicPerKey(t *testing.T) {
	a := Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond, Key: 1}
	b := Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond, Key: 1}
	c := Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond, Key: 2}
	same, diff := true, true
	for i := uint64(0); i < 16; i++ {
		if a.Delay(i) != b.Delay(i) {
			same = false
		}
		if a.Delay(i) != c.Delay(i) {
			diff = false
		}
	}
	if !same {
		t.Fatal("same key produced different schedules")
	}
	if diff {
		t.Fatal("different keys produced identical schedules (jitter not keyed)")
	}
}

func TestBackoffZeroValueUsesDefaults(t *testing.T) {
	var b Backoff
	for i := uint64(0); i < 12; i++ {
		d := b.Delay(i)
		if d <= 0 || d > 200*time.Millisecond {
			t.Fatalf("zero-value delay(%d) = %v", i, d)
		}
	}
}

func TestBackoffRetryStopsOnSuccessAndBudget(t *testing.T) {
	b := Backoff{Base: time.Microsecond, Cap: 10 * time.Microsecond}

	calls := 0
	if err := b.Retry(time.Second, func(uint64) error {
		calls++
		if calls < 3 {
			return errors.New("not yet")
		}
		return nil
	}); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if calls != 3 {
		t.Fatalf("retry made %d calls, want 3", calls)
	}

	// An exhausted budget surfaces the last error.
	sentinel := errors.New("always down")
	err := b.Retry(5*time.Millisecond, func(uint64) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("budget exhaustion returned %v, want the last op error", err)
	}
}
