package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/bufpool"
)

// TCPEndpoint connects one node to a cluster over TCP with a full mesh of
// connections, replacing the paper's MPI/InfiniBand layer. Frames are
// length-prefixed: from(4) kind(1) tag(4) len(4) payload, so the measured
// bytes match the accounted headerBytes exactly.
//
// Connection establishment is symmetric-free: node i dials every node
// j < i and accepts connections from every j > i; the dialer announces its
// ID in a 4-byte hello. Dials retry until the peer's listener is up.
type TCPEndpoint struct {
	recvInbox
	id    NodeID
	n     int
	ln    net.Listener
	conns []*tcpConn
	stats Stats

	closeOnce sync.Once
	closeErr  error
}

type tcpConn struct {
	mu sync.Mutex // serializes writers; guards hdr and vec
	c  net.Conn

	// Per-connection write scratch: the frame header and the gather
	// vector live on the conn so a steady-state vectored send allocates
	// nothing. vec is rebuilt (append to [:0]) under mu for every frame;
	// writev consumes wvec — a value copy whose address WriteTo takes, a
	// struct field rather than a local so it does not escape to a fresh
	// heap slice header per send — leaving vec's backing capacity intact
	// for the next frame.
	hdr  [headerBytes]byte
	vec  net.Buffers
	wvec net.Buffers
}

// maxFrameSize bounds a single frame's payload. The read loop treats a
// larger length prefix as stream corruption (equivalent to losing the
// peer) rather than trusting it with a giant allocation.
const maxFrameSize = 1 << 28

// putFrameHeader encodes the length-prefixed frame header: from(4)
// kind(1) tag(4) len(4), little-endian. hdr must have headerBytes room.
func putFrameHeader(hdr []byte, from NodeID, kind Kind, tag int32, payloadLen int) {
	binary.LittleEndian.PutUint32(hdr[0:], uint32(from))
	hdr[4] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(tag))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(payloadLen))
}

// parseFrameHeader decodes what putFrameHeader wrote.
func parseFrameHeader(hdr []byte) (from NodeID, kind Kind, tag int32, payloadLen int) {
	from = NodeID(binary.LittleEndian.Uint32(hdr[0:]))
	kind = Kind(hdr[4])
	tag = int32(binary.LittleEndian.Uint32(hdr[5:]))
	payloadLen = int(binary.LittleEndian.Uint32(hdr[9:]))
	return
}

// writeFrame writes one frame — header plus the concatenation of bufs —
// as a single gather write. On a *net.TCPConn the whole frame goes out
// in one writev with no intermediate copy; elsewhere net.Buffers falls
// back to sequential writes. Does not take ownership of bufs (the
// caller decides whether they return to the slab).
func (tc *tcpConn) writeFrame(from NodeID, kind Kind, tag int32, bufs Buffers) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	putFrameHeader(tc.hdr[:], from, kind, tag, bufs.TotalLen())
	tc.vec = append(tc.vec[:0], tc.hdr[:])
	for _, b := range bufs {
		if len(b) > 0 {
			tc.vec = append(tc.vec, b)
		}
	}
	// WriteTo consumes its receiver: it advances the slice and nils out
	// written elements (dropping the references to handed-off buffers).
	// Consuming the wvec copy keeps tc.vec's backing array — and
	// therefore zero-alloc reuse — intact.
	tc.wvec = tc.vec
	_, err := tc.wvec.WriteTo(tc.c)
	return err
}

// DefaultDialBudget bounds how long an endpoint retries dialing a peer
// before giving up on cluster formation, unless WithDialBudget overrides
// it.
const DefaultDialBudget = 30 * time.Second

// TCPOption configures NewTCPEndpoint.
type TCPOption func(*tcpConfig)

type tcpConfig struct {
	dialBudget time.Duration
}

// WithDialBudget sets the total time an endpoint keeps retrying each
// peer dial during cluster formation. Non-positive values select
// DefaultDialBudget.
func WithDialBudget(d time.Duration) TCPOption {
	return func(c *tcpConfig) { c.dialBudget = d }
}

// NewTCPEndpoint joins a cluster of n nodes as node id. ln must already be
// listening on addrs[id]; addrs lists every node's address. The call
// blocks until the full mesh is established.
func NewTCPEndpoint(id NodeID, ln net.Listener, addrs []string, opts ...TCPOption) (*TCPEndpoint, error) {
	cfg := tcpConfig{dialBudget: DefaultDialBudget}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dialBudget <= 0 {
		cfg.dialBudget = DefaultDialBudget
	}
	n := len(addrs)
	if int(id) < 0 || int(id) >= n {
		return nil, fmt.Errorf("comm: node id %d outside cluster of %d", id, n)
	}
	e := &TCPEndpoint{
		recvInbox: recvInbox{inbox: newDemux(id, n)},
		id:        id,
		n:         n,
		ln:        ln,
		conns:     make([]*tcpConn, n),
	}
	e.stats.initPeers(n)

	errc := make(chan error, n)
	var wg sync.WaitGroup
	// Dial lower-numbered peers.
	for j := 0; j < int(id); j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			c, err := dialWithRetry(addrs[j], cfg.dialBudget, uint64(id)<<32|uint64(j))
			if err != nil {
				errc <- fmt.Errorf("comm: node %d dialing node %d: %w", id, j, err)
				return
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(id))
			if _, err := c.Write(hello[:]); err != nil {
				errc <- fmt.Errorf("comm: node %d hello to node %d: %w", id, j, err)
				return
			}
			e.conns[j] = &tcpConn{c: c}
		}(j)
	}
	// Accept higher-numbered peers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for accepted := 0; accepted < n-1-int(id); accepted++ {
			c, err := ln.Accept()
			if err != nil {
				errc <- fmt.Errorf("comm: node %d accepting: %w", id, err)
				return
			}
			var hello [4]byte
			if _, err := io.ReadFull(c, hello[:]); err != nil {
				errc <- fmt.Errorf("comm: node %d reading hello: %w", id, err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer <= int(id) || peer >= n {
				errc <- fmt.Errorf("comm: node %d got hello from invalid peer %d", id, peer)
				return
			}
			e.conns[peer] = &tcpConn{c: c}
		}
	}()
	wg.Wait()
	select {
	case err := <-errc:
		e.Close()
		return nil, err
	default:
	}
	for j := 0; j < n; j++ {
		if j != int(id) {
			go e.readLoop(NodeID(j))
		}
	}
	return e, nil
}

// dialWithRetry dials addr until it succeeds or the budget elapses,
// pacing attempts with the module's shared Backoff policy keyed on
// dialKey so simultaneous cluster-formation dials from many nodes
// decorrelate without shared rand state.
func dialWithRetry(addr string, budget time.Duration, dialKey uint64) (net.Conn, error) {
	var c net.Conn
	err := DefaultBackoff(dialKey).Retry(budget, func(uint64) error {
		var err error
		c, err = net.Dial("tcp", addr)
		return err
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

func (e *TCPEndpoint) readLoop(from NodeID) {
	conn := e.conns[from].c
	var hdr [headerBytes]byte
	for {
		// A peer vanishing — clean close at a frame boundary, or a
		// short read inside the length-prefixed header or payload — is
		// fatal to the SPMD run: messages that were due will never
		// arrive. Closing the inbox turns every pending and future Recv
		// into an error instead of a hang; already-delivered messages
		// remain drainable from the closed queues.
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			e.inbox.close()
			return
		}
		src, kind, tag, size := parseFrameHeader(hdr[:])
		if size > maxFrameSize {
			e.inbox.close()
			return
		}
		m := Message{From: src, Kind: kind, Tag: tag}
		if size > 0 {
			// Payloads are read into slab buffers and owned by the
			// receiver: Message.Release returns them for the next frame.
			m.Payload = bufpool.Get(size)
			m.pooled = true
		}
		if _, err := io.ReadFull(conn, m.Payload); err != nil {
			e.inbox.close()
			return
		}
		if m.From != from {
			panic(fmt.Sprintf("comm: frame from %d arrived on connection to %d", m.From, from))
		}
		e.deliverSafe(m)
	}
}

// deliverSafe counts and delivers a frame, absorbing the race where
// another read loop (or Close) shut the inbox while this delivery was
// in flight.
func (e *TCPEndpoint) deliverSafe(m Message) {
	defer func() { recover() }()
	e.stats.countRecv(m.From, m.Kind, len(m.Payload))
	e.inbox.deliver(m)
}

// ID returns this endpoint's node ID.
func (e *TCPEndpoint) ID() NodeID { return e.id }

// N returns the cluster size.
func (e *TCPEndpoint) N() int { return e.n }

// Send implements Endpoint: the legacy aliasing path. The frame goes
// out through the same gather write as SendBufs, but the transport does
// not take ownership — the caller's buffer is never recycled, so it is
// safe to send one blob to many peers (as the collectives do).
func (e *TCPEndpoint) Send(to NodeID, kind Kind, tag int32, payload []byte) error {
	_, err := e.sendVec(to, kind, tag, Buffers{payload})
	return err
}

// SendBufs implements Endpoint: ownership of every buffer passes to the
// transport. The kernel copies the bytes during writev, so the buffers
// return to the slab as soon as the write completes — success or not.
func (e *TCPEndpoint) SendBufs(to NodeID, kind Kind, tag int32, bufs Buffers) error {
	_, err := e.sendVec(to, kind, tag, bufs)
	bufs.release()
	return err
}

func (e *TCPEndpoint) sendVec(to NodeID, kind Kind, tag int32, bufs Buffers) (int, error) {
	if int(to) < 0 || int(to) >= e.n || to == e.id {
		return 0, fmt.Errorf("comm: node %d cannot send to %d", e.id, to)
	}
	total := bufs.TotalLen()
	// A failed write means the peer (or our own endpoint) is gone — the
	// same transport cut a closed inbox reports — so it carries the
	// peer-lost type, not a bare I/O error.
	if err := e.conns[to].writeFrame(e.id, kind, tag, bufs); err != nil {
		return 0, &ClosedError{Node: e.id, From: to, Kind: kind, Op: "send", Cause: err}
	}
	e.stats.countSend(to, kind, total)
	return total, nil
}

// Stats implements Endpoint.
func (e *TCPEndpoint) Stats() *Stats { return &e.stats }

// Close shuts down all connections and the listener.
func (e *TCPEndpoint) Close() error {
	e.closeOnce.Do(func() {
		if e.ln != nil {
			e.closeErr = e.ln.Close()
		}
		for _, c := range e.conns {
			if c != nil {
				c.c.Close()
			}
		}
		e.inbox.close()
	})
	return e.closeErr
}

// NewTCPClusterLoopback forms an n-node TCP cluster on 127.0.0.1 ephemeral
// ports within this process — the transport-integration configuration used
// by tests and the tcpcluster example. For a genuinely distributed run,
// call NewTCPEndpoint in each process with a shared address list.
func NewTCPClusterLoopback(n int, opts ...TCPOption) ([]*TCPEndpoint, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				listeners[j].Close()
			}
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	endpoints := make([]*TCPEndpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			endpoints[i], errs[i] = NewTCPEndpoint(NodeID(i), listeners[i], addrs, opts...)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, e := range endpoints {
				if e != nil {
					e.Close()
				}
			}
			return nil, err
		}
	}
	return endpoints, nil
}
