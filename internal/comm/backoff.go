package comm

import (
	"time"

	"repro/internal/xrand"
)

// Backoff is the shared retry-delay policy for everything in this
// module that re-attempts a network operation: data-plane dials during
// cluster formation, control-plane dials from a serving front-end, and
// worker health probes. One definition keeps the cap and jitter shape
// identical across those paths instead of each caller growing its own
// ad-hoc copy.
//
// Delays grow exponentially from Base, capped at Cap, with full jitter
// in [delay/2, delay). Jitter is drawn from xrand keyed on (Key,
// attempt), so many concurrent retriers decorrelate deterministically
// — no shared rand state, and a seeded test replays the exact schedule.
type Backoff struct {
	// Base is the first delay (default 5ms).
	Base time.Duration
	// Cap bounds the grown delay (default 200ms).
	Cap time.Duration
	// Key decorrelates the jitter streams of concurrent retriers; use
	// something stable and distinct per retry site (peer index, hashed
	// address).
	Key uint64
}

// DefaultBackoff is the dial-retry policy cluster formation has always
// used: snappy once the peer is up, spread out under contention.
func DefaultBackoff(key uint64) Backoff {
	return Backoff{Base: 5 * time.Millisecond, Cap: 200 * time.Millisecond, Key: key}
}

// Delay returns the jittered sleep before retry number attempt
// (attempt 0 is the delay after the first failure).
func (b Backoff) Delay(attempt uint64) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	limit := b.Cap
	if limit <= 0 {
		limit = 200 * time.Millisecond
	}
	if limit < base {
		limit = base
	}
	d := base
	for i := uint64(0); i < attempt && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	// Full jitter in [d/2, d): backoff spreads retries over time,
	// jitter spreads them across retriers.
	return d/2 + time.Duration(xrand.Uniform01(b.Key, attempt)*float64(d/2))
}

// Retry calls op until it succeeds, the budget elapses, or op reports a
// permanent failure. op receives the attempt number; a sleep drawn from
// the backoff separates attempts, truncated so the loop never overruns
// the budget by more than one attempt. The last error is returned when
// the budget runs out.
func (b Backoff) Retry(budget time.Duration, op func(attempt uint64) error) error {
	deadline := time.Now().Add(budget)
	for attempt := uint64(0); ; attempt++ {
		err := op(attempt)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		sleep := b.Delay(attempt)
		if remain := time.Until(deadline); sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
	}
}
