package comm

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

// ctrlPair builds a connected CtrlConn pair over loopback TCP.
func ctrlPair(t *testing.T) (*CtrlConn, *CtrlConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := DialCtrl(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	server := NewCtrlConn(r.c)
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestCtrlConnRoundTrip(t *testing.T) {
	client, server := ctrlPair(t)

	type hello struct {
		Name  string `json:"name"`
		Nodes int    `json:"nodes"`
	}
	if err := client.Send("hello", hello{Name: "w1", Nodes: 3}); err != nil {
		t.Fatal(err)
	}
	var got hello
	if err := server.Expect("hello", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "w1" || got.Nodes != 3 {
		t.Fatalf("got %+v", got)
	}

	// A bodyless message decodes too.
	if err := server.Send("ack", nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Expect("ack", nil); err != nil {
		t.Fatal(err)
	}

	// Blob frames interleave with JSON frames in declared order.
	blob := bytes.Repeat([]byte{0xAB}, 1<<16)
	if err := client.Send("graph", nil); err != nil {
		t.Fatal(err)
	}
	if err := client.SendBlob(blob); err != nil {
		t.Fatal(err)
	}
	if err := server.Expect("graph", nil); err != nil {
		t.Fatal(err)
	}
	got2, err := server.RecvBlob()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, blob) {
		t.Fatalf("blob mismatch: %d bytes", len(got2))
	}
}

func TestCtrlConnExpectMismatch(t *testing.T) {
	client, server := ctrlPair(t)
	if err := client.Send("run", nil); err != nil {
		t.Fatal(err)
	}
	err := server.Expect("close", nil)
	if err == nil || !strings.Contains(err.Error(), `expected "close"`) {
		t.Fatalf("mismatch error: %v", err)
	}

	// A blob where a JSON envelope is expected is rejected, and vice
	// versa.
	if err := client.SendBlob([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err == nil {
		t.Fatal("blob accepted as JSON envelope")
	}
	if err := client.Send("x", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := server.RecvBlob(); err == nil {
		t.Fatal("JSON envelope accepted as blob")
	}
}

func TestCtrlConnFrameLimitAndEOF(t *testing.T) {
	client, server := ctrlPair(t)

	// A corrupt length prefix is rejected before allocation.
	raw := make([]byte, 5)
	raw[0] = ctrlFrameJSON
	binary.LittleEndian.PutUint32(raw[1:], uint32(MaxCtrlFrame)+1)
	if _, err := client.c.Write(raw); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize frame: %v", err)
	}

	// A vanished peer surfaces as a read error, not a hang.
	client.Close()
	if _, err := server.Recv(); err == nil {
		t.Fatal("read from closed peer succeeded")
	}
}

func TestCtrlMsgEnvelopeShape(t *testing.T) {
	// The wire envelope is stable JSON: {type, body}.
	env := CtrlMsg{Type: "build", Body: json.RawMessage(`{"nodes":2}`)}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"type":"build","body":{"nodes":2}}` {
		t.Fatalf("envelope %s", b)
	}
}
