package comm

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// ctrlPair builds a connected CtrlConn pair over loopback TCP.
func ctrlPair(t *testing.T) (*CtrlConn, *CtrlConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := DialCtrl(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	server := NewCtrlConn(r.c)
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestCtrlConnRoundTrip(t *testing.T) {
	client, server := ctrlPair(t)

	type hello struct {
		Name  string `json:"name"`
		Nodes int    `json:"nodes"`
	}
	if err := client.Send("hello", hello{Name: "w1", Nodes: 3}); err != nil {
		t.Fatal(err)
	}
	var got hello
	if err := server.Expect("hello", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "w1" || got.Nodes != 3 {
		t.Fatalf("got %+v", got)
	}

	// A bodyless message decodes too.
	if err := server.Send("ack", nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Expect("ack", nil); err != nil {
		t.Fatal(err)
	}

	// Blob frames interleave with JSON frames in declared order.
	blob := bytes.Repeat([]byte{0xAB}, 1<<16)
	if err := client.Send("graph", nil); err != nil {
		t.Fatal(err)
	}
	if err := client.SendBlob(blob); err != nil {
		t.Fatal(err)
	}
	if err := server.Expect("graph", nil); err != nil {
		t.Fatal(err)
	}
	got2, err := server.RecvBlob()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, blob) {
		t.Fatalf("blob mismatch: %d bytes", len(got2))
	}
}

func TestCtrlConnExpectMismatch(t *testing.T) {
	client, server := ctrlPair(t)
	if err := client.Send("run", nil); err != nil {
		t.Fatal(err)
	}
	err := server.Expect("close", nil)
	if err == nil || !strings.Contains(err.Error(), `expected "close"`) {
		t.Fatalf("mismatch error: %v", err)
	}

	// A blob where a JSON envelope is expected is rejected, and vice
	// versa.
	if err := client.SendBlob([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err == nil {
		t.Fatal("blob accepted as JSON envelope")
	}
	if err := client.Send("x", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := server.RecvBlob(); err == nil {
		t.Fatal("JSON envelope accepted as blob")
	}
}

func TestCtrlConnFrameLimitAndEOF(t *testing.T) {
	client, server := ctrlPair(t)

	// A corrupt length prefix is rejected before allocation.
	raw := make([]byte, 5)
	raw[0] = ctrlFrameJSON
	binary.LittleEndian.PutUint32(raw[1:], uint32(MaxCtrlFrame)+1)
	if _, err := client.c.Write(raw); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize frame: %v", err)
	}

	// A vanished peer surfaces as a read error, not a hang.
	client.Close()
	if _, err := server.Recv(); err == nil {
		t.Fatal("read from closed peer succeeded")
	}
}

func TestCtrlMsgEnvelopeShape(t *testing.T) {
	// The wire envelope is stable JSON: {type, body}.
	env := CtrlMsg{Type: "build", Body: json.RawMessage(`{"nodes":2}`)}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"type":"build","body":{"nodes":2}}` {
		t.Fatalf("envelope %s", b)
	}
}

// TestCtrlConnCloseRaceIsClosedError pins the taxonomy contract for the
// control plane: a peer vanishing mid-protocol — clean close (EOF at a
// frame boundary), close inside a frame, or a closed local socket —
// must surface as *ClosedError, never a bare io.EOF, so error
// classification (cliutil.ErrorReport, the pool's peer-lost path) files
// it under peer loss instead of "unclassified failure".
func TestCtrlConnCloseRaceIsClosedError(t *testing.T) {
	// Clean close: EOF at a frame boundary.
	client, server := ctrlPair(t)
	client.Close()
	_, err := server.Recv()
	var ce *ClosedError
	if !errors.As(err, &ce) {
		t.Fatalf("recv after peer close: %T %v, want *ClosedError", err, err)
	}
	if ce.Addr == "" {
		t.Fatalf("control ClosedError has no peer address: %v", ce)
	}

	// Mid-frame close: the header arrives, the payload never does.
	client2, server2 := ctrlPair(t)
	raw := make([]byte, 5)
	raw[0] = ctrlFrameJSON
	binary.LittleEndian.PutUint32(raw[1:], 1024)
	if _, err := client2.c.Write(raw); err != nil {
		t.Fatal(err)
	}
	client2.Close()
	_, err = server2.Recv()
	if !errors.As(err, &ce) {
		t.Fatalf("recv after mid-frame close: %T %v, want *ClosedError", err, err)
	}

	// Local close: operations on our own closed conn classify the same
	// way (net.ErrClosed), and sends to a dead peer do too.
	client3, server3 := ctrlPair(t)
	server3.Close()
	if _, err := server3.Recv(); !errors.As(err, &ce) {
		t.Fatalf("recv on locally closed conn: %T %v, want *ClosedError", err, err)
	}
	// Writes may need a couple of frames before the broken pipe is
	// observed (the first write often lands in the kernel buffer).
	var sendErr error
	for i := 0; i < 50 && sendErr == nil; i++ {
		sendErr = client3.Send("ping", nil)
		time.Sleep(time.Millisecond)
	}
	if !errors.As(sendErr, &ce) {
		t.Fatalf("send to dead peer: %T %v, want *ClosedError", sendErr, sendErr)
	}
	if ce.Op != "send" {
		t.Fatalf("send-side ClosedError op %q, want send", ce.Op)
	}
}

// TestChunkedBlobRoundTrip ships a blob that spans many chunks and
// checks byte identity plus the lockstep ack protocol.
func TestChunkedBlobRoundTrip(t *testing.T) {
	client, server := ctrlPair(t)
	blob := make([]byte, 1<<20+3) // deliberately not chunk-aligned
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	errc := make(chan error, 1)
	go func() { errc <- client.SendBlobChunked(blob, 0, 64<<10) }()
	got, err := server.RecvBlobChunked(nil, len(blob))
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("send: %v", err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("chunked round trip corrupted the blob")
	}
}

// TestChunkedBlobResumeAfterDisconnect is the framing-level acceptance
// test for resume-from-last-acked: the connection dies mid-transfer,
// the receiver retains its acknowledged prefix, and a second connection
// finishes the transfer from that offset — the assembled blob is
// byte-identical, with no chunk shipped twice past the resume point.
func TestChunkedBlobResumeAfterDisconnect(t *testing.T) {
	client, server := ctrlPair(t)
	blob := make([]byte, 512<<10)
	for i := range blob {
		blob[i] = byte(i>>8 ^ i)
	}
	const chunk = 32 << 10

	// The receiver processes exactly 4 chunks at the framing level —
	// header, blob, ack — then the link dies mid-transfer.
	sendErr := make(chan error, 1)
	go func() { sendErr <- client.SendBlobChunked(blob, 0, chunk) }()
	var partial []byte
	for i := 0; i < 4; i++ {
		var hdr ChunkMsg
		if err := server.Expect("chunk", &hdr); err != nil {
			t.Errorf("chunk %d header: %v", i, err)
			return
		}
		if hdr.Offset != len(partial) || hdr.Total != len(blob) {
			t.Errorf("chunk %d framed offset=%d total=%d, want offset=%d total=%d",
				i, hdr.Offset, hdr.Total, len(partial), len(blob))
			return
		}
		piece, err := server.RecvBlob()
		if err != nil {
			t.Errorf("chunk %d blob: %v", i, err)
			return
		}
		partial = append(partial, piece...)
		if err := server.Send("chunk-ack", ChunkAckMsg{Offset: len(partial)}); err != nil {
			t.Errorf("chunk %d ack: %v", i, err)
			return
		}
	}
	server.Close()
	client.Close()
	if err := <-sendErr; err == nil {
		t.Fatal("sender finished despite the disconnect")
	}
	if len(partial) != 4*chunk {
		t.Fatalf("retained prefix is %d bytes, want %d", len(partial), 4*chunk)
	}
	if !bytes.Equal(partial, blob[:len(partial)]) {
		t.Fatal("retained prefix corrupted")
	}

	// Fresh connection; the transfer resumes from the retained offset.
	client2, server2 := ctrlPair(t)
	errc := make(chan error, 1)
	go func() { errc <- client2.SendBlobChunked(blob, len(partial), chunk) }()
	full, err := server2.RecvBlobChunked(partial, len(blob))
	if err != nil {
		t.Fatalf("resumed recv: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("resumed send: %v", err)
	}
	if !bytes.Equal(full, blob) {
		t.Fatal("resumed transfer did not reassemble the blob")
	}
}

// TestChunkedBlobRejectsCorruptChunk flips a byte in flight and checks
// the CRC catches it before the blob is accepted.
func TestChunkedBlobRejectsCorruptChunk(t *testing.T) {
	client, server := ctrlPair(t)
	blob := []byte("the quick brown fox jumps over the lazy dog")

	go func() {
		// Hand-roll one chunk with a wrong CRC.
		hdr := ChunkMsg{Offset: 0, Size: len(blob), Total: len(blob), CRC: 0xdeadbeef}
		client.Send("chunk", hdr)
		client.SendBlob(blob)
	}()
	if _, err := server.RecvBlobChunked(nil, len(blob)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt chunk accepted: %v", err)
	}
}
