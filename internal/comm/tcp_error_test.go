package comm

import (
	"encoding/binary"
	"testing"
	"time"
)

// rawWrite bypasses Send and writes bytes straight onto e's connection
// to peer, simulating a peer that violates the framing protocol.
func rawWrite(t *testing.T, e *TCPEndpoint, peer NodeID, b []byte) {
	t.Helper()
	conn := e.conns[peer]
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if _, err := conn.c.Write(b); err != nil {
		t.Fatal(err)
	}
}

func recvWithTimeout(t *testing.T, e *TCPEndpoint, from NodeID, kind Kind, tag int32) error {
	t.Helper()
	errc := make(chan error, 1)
	go func() {
		_, err := e.Recv(from, kind, tag)
		errc <- err
	}()
	select {
	case err := <-errc:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked 5s after peer failure")
		return nil
	}
}

// TestTCPPeerCloseMidHeader kills a connection after a partial
// length-prefix header: the receiver's pending Recv must error out
// rather than hang.
func TestTCPPeerCloseMidHeader(t *testing.T) {
	eps, err := NewTCPClusterLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer eps[0].Close()
	defer eps[1].Close()

	// 5 of the 13 header bytes, then the peer dies.
	rawWrite(t, eps[1], 0, []byte{1, 0, 0, 0, 0})
	eps[1].conns[0].c.Close()

	if err := recvWithTimeout(t, eps[0], 1, KindUpdate, 0); err == nil {
		t.Fatal("Recv succeeded after mid-header close")
	}
}

// TestTCPPeerCloseMidPayload sends a header whose length prefix
// promises more payload than ever arrives.
func TestTCPPeerCloseMidPayload(t *testing.T) {
	eps, err := NewTCPClusterLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer eps[0].Close()
	defer eps[1].Close()

	var frame [headerBytes + 10]byte
	binary.LittleEndian.PutUint32(frame[0:], 1)   // from
	frame[4] = byte(KindUpdate)                   // kind
	binary.LittleEndian.PutUint32(frame[5:], 7)   // tag
	binary.LittleEndian.PutUint32(frame[9:], 100) // promised length
	rawWrite(t, eps[1], 0, frame[:])              // only 10 payload bytes follow
	eps[1].conns[0].c.Close()

	if err := recvWithTimeout(t, eps[0], 1, KindUpdate, 7); err == nil {
		t.Fatal("Recv succeeded after short payload")
	}
}

// TestTCPMessagesBeforeFailureStayReadable checks that frames delivered
// before a peer failure drain normally from the closed queues.
func TestTCPMessagesBeforeFailureStayReadable(t *testing.T) {
	eps, err := NewTCPClusterLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer eps[0].Close()
	defer eps[1].Close()

	if err := eps[1].Send(0, KindControl, 3, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Wait for delivery, then kill the connection mid-nothing (clean
	// close — still fatal to the SPMD protocol).
	deadline := time.Now().Add(2 * time.Second)
	for eps[0].Stats().ReceivedMessages(KindControl) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("frame never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	eps[1].conns[0].c.Close()

	m, err := eps[0].Recv(1, KindControl, 3)
	if err != nil {
		t.Fatalf("queued message lost: %v", err)
	}
	if string(m.Payload) != "ok" {
		t.Fatalf("payload %q", m.Payload)
	}
	if err := recvWithTimeout(t, eps[0], 1, KindControl, 4); err == nil {
		t.Fatal("Recv of never-sent message succeeded")
	}
}

// TestPerLinkAccounting checks the per-peer counters on both
// transports agree with the per-kind totals.
func TestPerLinkAccounting(t *testing.T) {
	c := NewMemCluster(3)
	defer c.Close()
	payload := make([]byte, 50)
	if err := c.Endpoint(0).Send(1, KindUpdate, 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := c.Endpoint(0).Send(2, KindDependency, 0, make([]byte, 20)); err != nil {
		t.Fatal(err)
	}
	s := c.Endpoint(0).Stats()
	if got := s.Peer(1).SentBytes; got != 50+headerBytes {
		t.Fatalf("link 0→1 sent %d", got)
	}
	if got := s.Peer(2).SentBytes; got != 20+headerBytes {
		t.Fatalf("link 0→2 sent %d", got)
	}
	if s.NumPeers() != 3 {
		t.Fatalf("NumPeers %d", s.NumPeers())
	}
	var perLink int64
	for p := NodeID(0); p < 3; p++ {
		perLink += s.Peer(p).SentBytes
	}
	if perLink != s.TotalSentBytes() {
		t.Fatalf("per-link sum %d != total %d", perLink, s.TotalSentBytes())
	}
	if _, err := c.Endpoint(1).Recv(0, KindUpdate, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Endpoint(1).Stats().Peer(0).ReceivedBytes; got != 50+headerBytes {
		t.Fatalf("link 1←0 received %d", got)
	}
}

// TestLinkQueueDelayAccounted checks that a bandwidth-bound simulated
// link records queueing delay for messages serialized behind earlier
// ones.
func TestLinkQueueDelayAccounted(t *testing.T) {
	// 2 × 50KB at 10MB/s: the second message queues ~5ms behind the
	// first.
	c := NewMemClusterWithLink(2, &LinkModel{BytesPerSecond: 10e6})
	defer c.Close()
	for i := int32(0); i < 2; i++ {
		if err := c.Endpoint(0).Send(1, KindUpdate, i, make([]byte, 50_000)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(0); i < 2; i++ {
		if _, err := c.Endpoint(1).Recv(0, KindUpdate, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Endpoint(0).Stats().QueueDelay(); got < 2*time.Millisecond {
		t.Fatalf("queue delay %v, want ≥ ~5ms", got)
	}
}
