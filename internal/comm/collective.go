package comm

import (
	"encoding/binary"

	"repro/internal/bufpool"
)

// Collectives used by the engine between iterations: a barrier, integer
// all-reduce (for frontier sizes, active counts and termination votes),
// and all-gather of byte blobs (for frontier bitmap exchange in dense
// mode). All are implemented over point-to-point Control messages with a
// gather-to-root/broadcast tree of depth 1, which is plenty at the
// cluster sizes the paper evaluates (≤16 nodes).
//
// Each collective call site must pass a tag that is unique within the
// current communication phase; the engine derives tags from iteration and
// phase numbers. All nodes must call the same collectives in the same
// order — the usual SPMD contract.

// Barrier blocks until every node in the cluster has entered it.
func Barrier(e Endpoint, tag int32) error {
	_, err := AllReduceInt64(e, 0, tag, func(a, b int64) int64 { return a + b })
	return err
}

// AllReduceInt64 combines x across all nodes with op (which must be
// associative and commutative) and returns the result on every node.
// Payloads cycle through the slab: each 8-byte frame is acquired from
// bufpool, handed off via SendBufs, and Released after decoding, so the
// per-superstep collectives allocate nothing in steady state.
func AllReduceInt64(e Endpoint, x int64, tag int32, op func(a, b int64) int64) (int64, error) {
	if e.ID() != 0 {
		if err := sendInt64(e, 0, tag, x); err != nil {
			return 0, err
		}
		m, err := e.Recv(0, KindControl, tag)
		if err != nil {
			return 0, err
		}
		v := int64(binary.LittleEndian.Uint64(m.Payload))
		m.Release()
		return v, nil
	}
	acc := x
	for from := 1; from < e.N(); from++ {
		m, err := e.Recv(NodeID(from), KindControl, tag)
		if err != nil {
			return 0, err
		}
		acc = op(acc, int64(binary.LittleEndian.Uint64(m.Payload)))
		m.Release()
	}
	for to := 1; to < e.N(); to++ {
		if err := sendInt64(e, NodeID(to), tag, acc); err != nil {
			return 0, err
		}
	}
	return acc, nil
}

// sendInt64 ships one 8-byte value in a slab-owned frame.
func sendInt64(e Endpoint, to NodeID, tag int32, v int64) error {
	buf := bufpool.Get(8)
	binary.LittleEndian.PutUint64(buf, uint64(v))
	return e.SendBufs(to, KindControl, tag, Buffers{buf})
}

// AllReduceBool ORs a boolean across all nodes (used for "any vertex still
// active" termination checks).
func AllReduceBool(e Endpoint, x bool, tag int32) (bool, error) {
	v := int64(0)
	if x {
		v = 1
	}
	r, err := AllReduceInt64(e, v, tag, func(a, b int64) int64 { return a | b })
	return r != 0, err
}

// AllGatherBytes distributes each node's blob to every node; the result
// slice is indexed by node ID. Blobs may have different lengths. The
// caller's own blob is aliased, not copied — which is why this fan-out
// uses the aliasing Send, never SendBufs: one buffer goes to N-1 peers,
// so no single recipient may own it. The gathered payloads are retained
// by the caller (never Released), so slab-backed TCP reads simply age
// out to the garbage collector.
func AllGatherBytes(e Endpoint, blob []byte, tag int32) ([][]byte, error) {
	out := make([][]byte, e.N())
	out[e.ID()] = blob
	// Send to all peers, then collect from all peers. The per-stream
	// demux queues make the all-to-all exchange deadlock-free.
	for to := 0; to < e.N(); to++ {
		if NodeID(to) == e.ID() {
			continue
		}
		if err := e.Send(NodeID(to), KindControl, tag, blob); err != nil {
			return nil, err
		}
	}
	for from := 0; from < e.N(); from++ {
		if NodeID(from) == e.ID() {
			continue
		}
		m, err := e.Recv(NodeID(from), KindControl, tag)
		if err != nil {
			return nil, err
		}
		out[from] = m.Payload
	}
	return out, nil
}
