package comm

import (
	"fmt"
	"time"
)

// The comm error taxonomy separates the three failure classes a caller
// reacts to differently:
//
//   - *ProtocolError — a tag mismatch at the receiver. The message stream
//     between two nodes diverged from the SPMD protocol; this is a bug in
//     the program or the engine, never recoverable by retrying.
//   - *ClosedError — the endpoint shut down while a receive was pending:
//     local Close, cluster teardown, or (on TCP) a vanished peer. The
//     awaited message will never arrive; the run is lost but the process
//     is healthy and the cluster can be re-formed.
//   - *TimeoutError — a deadline receive expired. The peer may be slow,
//     partitioned or dead; the engine turns this into a core.StallError
//     naming the blocked phase.
//
// Fault injection adds *CrashError (a simulated machine death) and
// *InjectedError (a simulated transient fault); both are recoverable by
// re-forming the cluster and re-running.

// ProtocolError reports a receive whose next queued message carried the
// wrong tag — a protocol bug (desynchronized SPMD streams), as opposed to
// peer loss. Node is the receiving endpoint, From the sender.
type ProtocolError struct {
	Node    NodeID
	From    NodeID
	Kind    Kind
	WantTag int32
	GotTag  int32
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("comm: protocol violation at node %d: received tag %d from node %d kind %v, expected %d",
		e.Node, e.GotTag, e.From, e.Kind, e.WantTag)
}

// ClosedError reports an operation that can never complete because the
// transport closed: local teardown, run poisoning, or a lost TCP peer.
// Op is "send" when a write to the dead peer failed; empty for the
// common case, a receive whose messages will never arrive. Addr is set
// instead of the node triple when the loss happened on a control-plane
// connection (CtrlConn), which has a peer address but no ring identity.
type ClosedError struct {
	Node  NodeID
	From  NodeID
	Kind  Kind
	Op    string
	Addr  string
	Cause error
}

func (e *ClosedError) Error() string {
	if e.Addr != "" {
		if e.Op == "send" {
			return fmt.Sprintf("comm: control connection to %s closed during send: %v", e.Addr, e.Cause)
		}
		return fmt.Sprintf("comm: control connection to %s closed: %v", e.Addr, e.Cause)
	}
	if e.Op == "send" {
		return fmt.Sprintf("comm: endpoint %d lost peer %d sending kind %v: %v", e.Node, e.From, e.Kind, e.Cause)
	}
	return fmt.Sprintf("comm: endpoint %d closed while receiving from %d kind %v", e.Node, e.From, e.Kind)
}

// Unwrap exposes the underlying I/O error, when one was recorded.
func (e *ClosedError) Unwrap() error { return e.Cause }

// TimeoutError reports a deadline receive that expired before the awaited
// message arrived. It names the exact stream so stall reports can say who
// was being waited on.
type TimeoutError struct {
	Node    NodeID
	From    NodeID
	Kind    Kind
	Tag     int32
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("comm: node %d timed out after %v receiving from %d kind %v tag %d",
		e.Node, e.Timeout, e.From, e.Kind, e.Tag)
}

// CrashError is returned by every operation on an endpoint whose node a
// FaultPlan has crashed: the in-process simulation of a machine death.
type CrashError struct {
	Node      NodeID
	Superstep int
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("comm: node %d crashed by fault plan at superstep %d", e.Node, e.Superstep)
}

// InjectedError is a transient, seed-driven send failure from a
// FaultPlan — the simulation of a dropped connection write that a
// retrying sender would survive.
type InjectedError struct {
	Node NodeID
	To   NodeID
	Op   int64 // the sender-side operation index that drew the fault
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("comm: injected transient error on send %d from node %d to node %d", e.Op, e.Node, e.To)
}
