package comm

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"syscall"
	"time"
)

// The control protocol is the serving layer's out-of-band channel to
// worker daemons: a front-end dials a worker, negotiates one engine
// slot over the connection, ships the graph and options, and then
// drives queries. It is deliberately separate from the data-plane
// Endpoint framing — control traffic is low-rate and schema-ful, so
// frames carry JSON documents (plus raw blobs for bulk payloads like
// serialized graphs) instead of the engine's tagged binary messages.
//
// Frame layout: kind(1) len(4 LE) payload. Kind 'J' payloads are JSON
// envelopes {type, body}; kind 'B' payloads are opaque blobs whose
// meaning is established by the preceding JSON message.

const (
	ctrlFrameJSON = 'J'
	ctrlFrameBlob = 'B'

	// MaxCtrlFrame bounds a single control frame. Graph blobs dominate;
	// 1 GiB comfortably covers every graph this runtime can hold while
	// still rejecting a corrupt length prefix before allocating.
	MaxCtrlFrame = 1 << 30
)

// CtrlMsg is the JSON envelope every non-blob control frame carries.
type CtrlMsg struct {
	Type string          `json:"type"`
	Body json.RawMessage `json:"body,omitempty"`
}

// CtrlConn is one control-protocol connection. Reads and writes are
// each internally serialized, so one goroutine may send while another
// receives, but concurrent senders interleave whole frames, never
// bytes.
type CtrlConn struct {
	c net.Conn

	wmu sync.Mutex
	bw  *bufio.Writer

	rmu sync.Mutex
	br  *bufio.Reader

	closeOnce sync.Once
	closeErr  error
}

// NewCtrlConn wraps an established connection in control framing.
func NewCtrlConn(c net.Conn) *CtrlConn {
	return &CtrlConn{
		c:  c,
		bw: bufio.NewWriter(c),
		br: bufio.NewReader(c),
	}
}

// DialCtrl connects to a worker's control address.
func DialCtrl(addr string, timeout time.Duration) (*CtrlConn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("comm: control dial %s: %w", addr, err)
	}
	return NewCtrlConn(c), nil
}

// DialCtrlRetry dials a control address with the shared Backoff policy
// until it succeeds or the budget elapses — the control-plane analogue
// of the data plane's dialWithRetry, so slot builds ride out a worker
// that is mid-restart instead of failing on the first refused dial.
// Each individual attempt is bounded by attemptTimeout.
func DialCtrlRetry(addr string, budget, attemptTimeout time.Duration, bo Backoff) (*CtrlConn, error) {
	var cc *CtrlConn
	err := bo.Retry(budget, func(uint64) error {
		c, err := net.DialTimeout("tcp", addr, attemptTimeout)
		if err != nil {
			return err
		}
		cc = NewCtrlConn(c)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("comm: control dial %s: %w", addr, err)
	}
	return cc, nil
}

// RemoteAddr names the peer, for logs and error messages.
func (cc *CtrlConn) RemoteAddr() string { return cc.c.RemoteAddr().String() }

// SetDeadline bounds the next reads and writes (zero clears it).
func (cc *CtrlConn) SetDeadline(t time.Time) error { return cc.c.SetDeadline(t) }

// classify wraps errors that mean the connection is gone — EOF at or
// inside a frame, a reset or closed socket — as *ClosedError, so a
// control-protocol failure that races connection close surfaces through
// the same typed taxonomy the data plane uses (cliutil.ErrorReport and
// the pool's peer-lost path both classify with errors.As, and a bare
// io.EOF would fall through to "unclassified"). Other errors (deadline
// expiry, JSON trouble) pass through with a generic wrap.
func (cc *CtrlConn) classify(op string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return &ClosedError{Op: op, Addr: cc.RemoteAddr(), Cause: err}
	}
	if op == "send" {
		return fmt.Errorf("comm: control write: %w", err)
	}
	return fmt.Errorf("comm: control read: %w", err)
}

func (cc *CtrlConn) writeFrame(kind byte, payload []byte) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := cc.bw.Write(hdr[:]); err != nil {
		return cc.classify("send", err)
	}
	if _, err := cc.bw.Write(payload); err != nil {
		return cc.classify("send", err)
	}
	if err := cc.bw.Flush(); err != nil {
		return cc.classify("send", err)
	}
	return nil
}

func (cc *CtrlConn) readFrame() (kind byte, payload []byte, err error) {
	cc.rmu.Lock()
	defer cc.rmu.Unlock()
	var hdr [5]byte
	if _, err := io.ReadFull(cc.br, hdr[:]); err != nil {
		return 0, nil, cc.classify("recv", err)
	}
	size := binary.LittleEndian.Uint32(hdr[1:])
	if size > MaxCtrlFrame {
		return 0, nil, fmt.Errorf("comm: control frame of %d bytes exceeds limit %d", size, MaxCtrlFrame)
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(cc.br, payload); err != nil {
		return 0, nil, cc.classify("recv", err)
	}
	return hdr[0], payload, nil
}

// Send marshals body into a typed JSON envelope and writes it as one
// frame. A nil body sends an envelope with no payload.
func (cc *CtrlConn) Send(msgType string, body any) error {
	env := CtrlMsg{Type: msgType}
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("comm: control marshal %s: %w", msgType, err)
		}
		env.Body = b
	}
	frame, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("comm: control marshal %s: %w", msgType, err)
	}
	return cc.writeFrame(ctrlFrameJSON, frame)
}

// Recv reads the next JSON envelope. A blob frame in this position is a
// protocol violation.
func (cc *CtrlConn) Recv() (CtrlMsg, error) {
	kind, payload, err := cc.readFrame()
	if err != nil {
		return CtrlMsg{}, err
	}
	if kind != ctrlFrameJSON {
		return CtrlMsg{}, fmt.Errorf("comm: expected control message, got frame kind %q", kind)
	}
	var env CtrlMsg
	if err := json.Unmarshal(payload, &env); err != nil {
		return CtrlMsg{}, fmt.Errorf("comm: bad control envelope: %w", err)
	}
	return env, nil
}

// Expect receives the next envelope and checks its type, decoding the
// body into out when non-nil. It is the lockstep-protocol helper: any
// other message type is an error naming both sides' expectation.
func (cc *CtrlConn) Expect(msgType string, out any) error {
	env, err := cc.Recv()
	if err != nil {
		return err
	}
	if env.Type != msgType {
		return fmt.Errorf("comm: control expected %q, peer sent %q", msgType, env.Type)
	}
	if out != nil {
		if err := json.Unmarshal(env.Body, out); err != nil {
			return fmt.Errorf("comm: bad %q body: %w", msgType, err)
		}
	}
	return nil
}

// SendBlob writes one opaque blob frame.
func (cc *CtrlConn) SendBlob(b []byte) error {
	return cc.writeFrame(ctrlFrameBlob, b)
}

// RecvBlob reads the next frame, which must be a blob.
func (cc *CtrlConn) RecvBlob() ([]byte, error) {
	kind, payload, err := cc.readFrame()
	if err != nil {
		return nil, err
	}
	if kind != ctrlFrameBlob {
		return nil, fmt.Errorf("comm: expected control blob, got frame kind %q", kind)
	}
	return payload, nil
}

// Close shuts the connection down; safe to call repeatedly.
func (cc *CtrlConn) Close() error {
	cc.closeOnce.Do(func() { cc.closeErr = cc.c.Close() })
	return cc.closeErr
}

// Chunked blob transfer
//
// A bulk payload (a serialized graph) larger than one comfortable
// control frame ships as a sequence of fixed-size chunks, each a
// "chunk" JSON envelope carrying offset/size/total plus a CRC32 of the
// chunk bytes, followed by the blob frame itself. The receiver
// acknowledges every chunk ("chunk-ack" with its new byte count) before
// the sender emits the next one. The lockstep ack is what makes
// resume-from-last-acked well-defined: when the connection dies
// mid-transfer, the receiver retains the contiguous prefix it has
// acknowledged, reports that offset in the next transfer negotiation,
// and the sender restarts from there instead of byte zero.

// DefaultChunkBytes is the chunk size bulk transfers use unless the
// caller picks another: big enough to amortize framing, small enough
// that a flaky link loses at most one chunk of progress.
const DefaultChunkBytes = 256 << 10

// ChunkMsg is the per-chunk header envelope.
type ChunkMsg struct {
	Offset int    `json:"offset"` // byte offset of this chunk in the blob
	Size   int    `json:"size"`   // chunk length in bytes
	Total  int    `json:"total"`  // full blob length
	CRC    uint32 `json:"crc"`    // CRC32 (IEEE) of the chunk bytes
}

// ChunkAckMsg acknowledges a chunk: Offset is the receiver's contiguous
// byte count after absorbing it.
type ChunkAckMsg struct {
	Offset int `json:"offset"`
}

// SendBlobChunked ships data[offset:] as acknowledged chunks of
// chunkBytes (DefaultChunkBytes when non-positive). offset supports
// resume: a receiver that already holds a prefix reports its length and
// the sender skips it. The caller is responsible for having agreed on
// the transfer (and its total size) beforehand.
func (cc *CtrlConn) SendBlobChunked(data []byte, offset, chunkBytes int) error {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if offset < 0 || offset > len(data) {
		return fmt.Errorf("comm: chunked send resume offset %d outside blob of %d bytes", offset, len(data))
	}
	for off := offset; off < len(data); {
		n := len(data) - off
		if n > chunkBytes {
			n = chunkBytes
		}
		chunk := data[off : off+n]
		hdr := ChunkMsg{Offset: off, Size: n, Total: len(data), CRC: crc32.ChecksumIEEE(chunk)}
		if err := cc.Send("chunk", hdr); err != nil {
			return err
		}
		if err := cc.SendBlob(chunk); err != nil {
			return err
		}
		var ack ChunkAckMsg
		if err := cc.Expect("chunk-ack", &ack); err != nil {
			return err
		}
		if ack.Offset != off+n {
			return fmt.Errorf("comm: chunk ack for offset %d, want %d", ack.Offset, off+n)
		}
		off += n
	}
	return nil
}

// RecvBlobChunked receives an acknowledged chunk stream into buf —
// normally empty, or the retained prefix of an interrupted transfer —
// until total bytes have arrived. Every return hands back the
// accumulated buffer, so on error the caller can stash it and resume
// the transfer on a fresh connection from len(buf).
func (cc *CtrlConn) RecvBlobChunked(buf []byte, total int) ([]byte, error) {
	if len(buf) > total {
		return buf, fmt.Errorf("comm: chunked recv holds %d bytes of a %d-byte blob", len(buf), total)
	}
	for len(buf) < total {
		var hdr ChunkMsg
		if err := cc.Expect("chunk", &hdr); err != nil {
			return buf, err
		}
		if hdr.Total != total || hdr.Offset != len(buf) || hdr.Size <= 0 || hdr.Offset+hdr.Size > total {
			return buf, fmt.Errorf("comm: chunk framing offset=%d size=%d total=%d, receiver at %d/%d",
				hdr.Offset, hdr.Size, hdr.Total, len(buf), total)
		}
		chunk, err := cc.RecvBlob()
		if err != nil {
			return buf, err
		}
		if len(chunk) != hdr.Size {
			return buf, fmt.Errorf("comm: chunk carried %d bytes, header said %d", len(chunk), hdr.Size)
		}
		if crc32.ChecksumIEEE(chunk) != hdr.CRC {
			return buf, fmt.Errorf("comm: chunk at offset %d failed CRC", hdr.Offset)
		}
		buf = append(buf, chunk...)
		if err := cc.Send("chunk-ack", ChunkAckMsg{Offset: len(buf)}); err != nil {
			return buf, err
		}
	}
	return buf, nil
}
