package comm

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The control protocol is the serving layer's out-of-band channel to
// worker daemons: a front-end dials a worker, negotiates one engine
// slot over the connection, ships the graph and options, and then
// drives queries. It is deliberately separate from the data-plane
// Endpoint framing — control traffic is low-rate and schema-ful, so
// frames carry JSON documents (plus raw blobs for bulk payloads like
// serialized graphs) instead of the engine's tagged binary messages.
//
// Frame layout: kind(1) len(4 LE) payload. Kind 'J' payloads are JSON
// envelopes {type, body}; kind 'B' payloads are opaque blobs whose
// meaning is established by the preceding JSON message.

const (
	ctrlFrameJSON = 'J'
	ctrlFrameBlob = 'B'

	// MaxCtrlFrame bounds a single control frame. Graph blobs dominate;
	// 1 GiB comfortably covers every graph this runtime can hold while
	// still rejecting a corrupt length prefix before allocating.
	MaxCtrlFrame = 1 << 30
)

// CtrlMsg is the JSON envelope every non-blob control frame carries.
type CtrlMsg struct {
	Type string          `json:"type"`
	Body json.RawMessage `json:"body,omitempty"`
}

// CtrlConn is one control-protocol connection. Reads and writes are
// each internally serialized, so one goroutine may send while another
// receives, but concurrent senders interleave whole frames, never
// bytes.
type CtrlConn struct {
	c net.Conn

	wmu sync.Mutex
	bw  *bufio.Writer

	rmu sync.Mutex
	br  *bufio.Reader

	closeOnce sync.Once
	closeErr  error
}

// NewCtrlConn wraps an established connection in control framing.
func NewCtrlConn(c net.Conn) *CtrlConn {
	return &CtrlConn{
		c:  c,
		bw: bufio.NewWriter(c),
		br: bufio.NewReader(c),
	}
}

// DialCtrl connects to a worker's control address.
func DialCtrl(addr string, timeout time.Duration) (*CtrlConn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("comm: control dial %s: %w", addr, err)
	}
	return NewCtrlConn(c), nil
}

// RemoteAddr names the peer, for logs and error messages.
func (cc *CtrlConn) RemoteAddr() string { return cc.c.RemoteAddr().String() }

// SetDeadline bounds the next reads and writes (zero clears it).
func (cc *CtrlConn) SetDeadline(t time.Time) error { return cc.c.SetDeadline(t) }

func (cc *CtrlConn) writeFrame(kind byte, payload []byte) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := cc.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("comm: control write: %w", err)
	}
	if _, err := cc.bw.Write(payload); err != nil {
		return fmt.Errorf("comm: control write: %w", err)
	}
	if err := cc.bw.Flush(); err != nil {
		return fmt.Errorf("comm: control write: %w", err)
	}
	return nil
}

func (cc *CtrlConn) readFrame() (kind byte, payload []byte, err error) {
	cc.rmu.Lock()
	defer cc.rmu.Unlock()
	var hdr [5]byte
	if _, err := io.ReadFull(cc.br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("comm: control read: %w", err)
	}
	size := binary.LittleEndian.Uint32(hdr[1:])
	if size > MaxCtrlFrame {
		return 0, nil, fmt.Errorf("comm: control frame of %d bytes exceeds limit %d", size, MaxCtrlFrame)
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(cc.br, payload); err != nil {
		return 0, nil, fmt.Errorf("comm: control read: %w", err)
	}
	return hdr[0], payload, nil
}

// Send marshals body into a typed JSON envelope and writes it as one
// frame. A nil body sends an envelope with no payload.
func (cc *CtrlConn) Send(msgType string, body any) error {
	env := CtrlMsg{Type: msgType}
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("comm: control marshal %s: %w", msgType, err)
		}
		env.Body = b
	}
	frame, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("comm: control marshal %s: %w", msgType, err)
	}
	return cc.writeFrame(ctrlFrameJSON, frame)
}

// Recv reads the next JSON envelope. A blob frame in this position is a
// protocol violation.
func (cc *CtrlConn) Recv() (CtrlMsg, error) {
	kind, payload, err := cc.readFrame()
	if err != nil {
		return CtrlMsg{}, err
	}
	if kind != ctrlFrameJSON {
		return CtrlMsg{}, fmt.Errorf("comm: expected control message, got frame kind %q", kind)
	}
	var env CtrlMsg
	if err := json.Unmarshal(payload, &env); err != nil {
		return CtrlMsg{}, fmt.Errorf("comm: bad control envelope: %w", err)
	}
	return env, nil
}

// Expect receives the next envelope and checks its type, decoding the
// body into out when non-nil. It is the lockstep-protocol helper: any
// other message type is an error naming both sides' expectation.
func (cc *CtrlConn) Expect(msgType string, out any) error {
	env, err := cc.Recv()
	if err != nil {
		return err
	}
	if env.Type != msgType {
		return fmt.Errorf("comm: control expected %q, peer sent %q", msgType, env.Type)
	}
	if out != nil {
		if err := json.Unmarshal(env.Body, out); err != nil {
			return fmt.Errorf("comm: bad %q body: %w", msgType, err)
		}
	}
	return nil
}

// SendBlob writes one opaque blob frame.
func (cc *CtrlConn) SendBlob(b []byte) error {
	return cc.writeFrame(ctrlFrameBlob, b)
}

// RecvBlob reads the next frame, which must be a blob.
func (cc *CtrlConn) RecvBlob() ([]byte, error) {
	kind, payload, err := cc.readFrame()
	if err != nil {
		return nil, err
	}
	if kind != ctrlFrameBlob {
		return nil, fmt.Errorf("comm: expected control blob, got frame kind %q", kind)
	}
	return payload, nil
}

// Close shuts the connection down; safe to call repeatedly.
func (cc *CtrlConn) Close() error {
	cc.closeOnce.Do(func() { cc.closeErr = cc.c.Close() })
	return cc.closeErr
}
