package comm

import (
	"errors"
	"testing"
	"time"
)

// chatter drives a fixed message schedule over wrapped endpoints and
// returns how many sends failed. The schedule is deterministic, so two
// identically seeded plans must inject identical fault sequences.
func chatter(t *testing.T, eps []Endpoint, rounds int) (sendErrs int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		if err := eps[0].Send(1, KindUpdate, int32(r), []byte{byte(r)}); err != nil {
			var ie *InjectedError
			if !errors.As(err, &ie) {
				t.Fatalf("round %d: unexpected send error %v", r, err)
			}
			sendErrs++
			continue
		}
		if _, err := eps[1].Recv(0, KindUpdate, int32(r)); err != nil {
			t.Fatalf("round %d: recv: %v", r, err)
		}
	}
	return sendErrs
}

func TestFaultPlanDeterministicSendErrors(t *testing.T) {
	run := func(seed uint64) (int, FaultCounters) {
		plan := &FaultPlan{Seed: seed, SendErrProb: 0.3}
		c := NewMemCluster(2)
		defer c.Close()
		eps := plan.Wrap(c.Endpoints())
		errs := chatter(t, eps, 200)
		return errs, plan.Counters()
	}
	errs1, c1 := run(7)
	errs2, c2 := run(7)
	if errs1 != errs2 || c1 != c2 {
		t.Fatalf("same seed diverged: %d/%+v vs %d/%+v", errs1, c1, errs2, c2)
	}
	if errs1 == 0 || errs1 == 200 {
		t.Fatalf("p=0.3 over 200 sends injected %d errors", errs1)
	}
	if c1.SendErrs != int64(errs1) {
		t.Fatalf("counter %d, observed %d", c1.SendErrs, errs1)
	}
	errs3, _ := run(8)
	if errs3 == errs1 {
		t.Logf("seeds 7 and 8 coincidentally injected the same count %d", errs1)
	}
}

func TestFaultPlanDelaySpikes(t *testing.T) {
	plan := &FaultPlan{Seed: 1, DelayProb: 1.0, Delay: 5 * time.Millisecond}
	c := NewMemCluster(2)
	defer c.Close()
	eps := plan.Wrap(c.Endpoints())
	start := time.Now()
	const rounds = 5
	chatter(t, eps, rounds)
	if elapsed := time.Since(start); elapsed < rounds*5*time.Millisecond {
		t.Fatalf("5 always-delayed sends took %v", elapsed)
	}
	if got := plan.Counters().Delays; got != rounds {
		t.Fatalf("delay counter = %d, want %d", got, rounds)
	}
}

func TestFaultPlanCrashAtSuperstep(t *testing.T) {
	plan := &FaultPlan{Seed: 1, CrashNode: 1, CrashAtSuperstep: 3}
	c := NewMemCluster(2)
	defer c.Close()
	eps := plan.Wrap(c.Endpoints())

	// Before superstep 3 the node works.
	ObserveSuperstep(eps[1], 2)
	if err := eps[1].Send(0, KindControl, 0, nil); err != nil {
		t.Fatalf("pre-crash send: %v", err)
	}
	if _, err := eps[0].Recv(1, KindControl, 0); err != nil {
		t.Fatal(err)
	}

	// At superstep 3 every operation fails with a *CrashError.
	ObserveSuperstep(eps[1], 3)
	var ce *CrashError
	if err := eps[1].Send(0, KindControl, 1, nil); !errors.As(err, &ce) {
		t.Fatalf("post-crash send returned %v, want *CrashError", err)
	}
	if ce.Node != 1 || ce.Superstep != 3 {
		t.Fatalf("crash context = %+v", ce)
	}
	if _, err := eps[1].Recv(0, KindControl, 1); !errors.As(err, &ce) {
		t.Fatalf("post-crash recv returned %v, want *CrashError", err)
	}
	if !plan.CrashFired() || plan.Counters().Crashes != 1 {
		t.Fatalf("crash bookkeeping: fired=%v counters=%+v", plan.CrashFired(), plan.Counters())
	}

	// The crash fires once per plan: a re-formed cluster (fresh wrap,
	// same plan) runs fault-free — the recovery scenario.
	c2 := NewMemCluster(2)
	defer c2.Close()
	eps2 := plan.Wrap(c2.Endpoints())
	ObserveSuperstep(eps2[1], 5)
	if err := eps2[1].Send(0, KindControl, 2, nil); err != nil {
		t.Fatalf("post-recovery send: %v", err)
	}
	if plan.Counters().Crashes != 1 {
		t.Fatalf("crash fired again: %+v", plan.Counters())
	}
}

func TestFaultPlanPartitionWindow(t *testing.T) {
	plan := &FaultPlan{Seed: 1, Partitions: []PartitionWindow{
		{A: 0, B: 1, FromStep: 2, ToStep: 4, Drop: true},
	}}
	c := NewMemCluster(3)
	defer c.Close()
	eps := plan.Wrap(c.Endpoints())

	// Outside the window: delivered.
	if err := eps[0].Send(1, KindUpdate, 0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := RecvTimeout(eps[1], 0, KindUpdate, 0, time.Second); err != nil {
		t.Fatalf("pre-window recv: %v", err)
	}

	// Inside the window: silently dropped; the receiver's deadline
	// receive must time out — the stall substrate.
	ObserveSuperstep(eps[0], 2)
	if err := eps[0].Send(1, KindUpdate, 1, []byte("b")); err != nil {
		t.Fatalf("dropped send must report success: %v", err)
	}
	var te *TimeoutError
	if _, err := RecvTimeout(eps[1], 0, KindUpdate, 1, 50*time.Millisecond); !errors.As(err, &te) {
		t.Fatalf("partitioned recv returned %v, want *TimeoutError", err)
	}
	// Unrelated pair unaffected.
	if err := eps[0].Send(2, KindUpdate, 0, []byte("c")); err != nil {
		t.Fatal(err)
	}
	if _, err := RecvTimeout(eps[2], 0, KindUpdate, 0, time.Second); err != nil {
		t.Fatalf("third-party recv: %v", err)
	}

	// Past the window: traffic flows again. The dropped tag-1 message
	// never entered the queue, so the stream continues at tag 2.
	ObserveSuperstep(eps[0], 4)
	if err := eps[0].Send(1, KindUpdate, 2, []byte("d")); err != nil {
		t.Fatal(err)
	}
	if _, err := RecvTimeout(eps[1], 0, KindUpdate, 2, time.Second); err != nil {
		t.Fatalf("post-window recv: %v", err)
	}
	if got := plan.Counters().Drops; got != 1 {
		t.Fatalf("drop counter = %d", got)
	}
}
