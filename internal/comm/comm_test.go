package comm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// endpointsUnderTest runs a subtest against both transports.
func endpointsUnderTest(t *testing.T, n int, fn func(t *testing.T, eps []Endpoint)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		c := NewMemCluster(n)
		defer c.Close()
		fn(t, c.Endpoints())
	})
	t.Run("tcp", func(t *testing.T) {
		tcps, err := NewTCPClusterLoopback(n)
		if err != nil {
			t.Fatal(err)
		}
		eps := make([]Endpoint, n)
		for i, e := range tcps {
			eps[i] = e
		}
		defer func() {
			for _, e := range tcps {
				e.Close()
			}
		}()
		fn(t, eps)
	})
}

func TestSendRecvBasic(t *testing.T) {
	endpointsUnderTest(t, 2, func(t *testing.T, eps []Endpoint) {
		payload := []byte("hello graph")
		if err := eps[0].Send(1, KindUpdate, 7, append([]byte(nil), payload...)); err != nil {
			t.Fatal(err)
		}
		m, err := eps[1].Recv(0, KindUpdate, 7)
		if err != nil {
			t.Fatal(err)
		}
		if m.From != 0 || m.Kind != KindUpdate || m.Tag != 7 || !bytes.Equal(m.Payload, payload) {
			t.Fatalf("got %+v", m)
		}
	})
}

func TestKindsAreIndependentStreams(t *testing.T) {
	endpointsUnderTest(t, 2, func(t *testing.T, eps []Endpoint) {
		// Interleave kinds; receive in the opposite order.
		if err := eps[0].Send(1, KindUpdate, 1, []byte("u")); err != nil {
			t.Fatal(err)
		}
		if err := eps[0].Send(1, KindDependency, 2, []byte("d")); err != nil {
			t.Fatal(err)
		}
		md, err := eps[1].Recv(0, KindDependency, 2)
		if err != nil {
			t.Fatal(err)
		}
		mu, err := eps[1].Recv(0, KindUpdate, 1)
		if err != nil {
			t.Fatal(err)
		}
		if string(md.Payload) != "d" || string(mu.Payload) != "u" {
			t.Fatalf("payloads %q %q", md.Payload, mu.Payload)
		}
	})
}

func TestFIFOPerStream(t *testing.T) {
	endpointsUnderTest(t, 2, func(t *testing.T, eps []Endpoint) {
		const k = 100
		for i := 0; i < k; i++ {
			if err := eps[0].Send(1, KindUpdate, int32(i), []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < k; i++ {
			m, err := eps[1].Recv(0, KindUpdate, int32(i))
			if err != nil {
				t.Fatal(err)
			}
			if m.Payload[0] != byte(i) {
				t.Fatalf("message %d has payload %d", i, m.Payload[0])
			}
		}
	})
}

func TestTagMismatchIsProtocolError(t *testing.T) {
	c := NewMemCluster(2)
	defer c.Close()
	if err := c.Endpoint(0).Send(1, KindUpdate, 5, nil); err != nil {
		t.Fatal(err)
	}
	_, err := c.Endpoint(1).Recv(0, KindUpdate, 6)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("tag mismatch returned %v, want *ProtocolError", err)
	}
	if pe.Node != 1 || pe.From != 0 || pe.Kind != KindUpdate || pe.WantTag != 6 || pe.GotTag != 5 {
		t.Fatalf("protocol error context = %+v", pe)
	}
}

func TestStatsAccounting(t *testing.T) {
	endpointsUnderTest(t, 2, func(t *testing.T, eps []Endpoint) {
		payload := make([]byte, 100)
		if err := eps[0].Send(1, KindDependency, 0, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := eps[1].Recv(0, KindDependency, 0); err != nil {
			t.Fatal(err)
		}
		s := eps[0].Stats()
		if got := s.SentMessages(KindDependency); got != 1 {
			t.Fatalf("sent msgs = %d", got)
		}
		wantBytes := int64(100 + headerBytes)
		if got := s.SentBytes(KindDependency); got != wantBytes {
			t.Fatalf("sent bytes = %d, want %d", got, wantBytes)
		}
		if got := s.SentBytes(KindUpdate); got != 0 {
			t.Fatalf("update bytes = %d, want 0", got)
		}
		r := eps[1].Stats()
		if got := r.ReceivedBytes(KindDependency); got != wantBytes {
			t.Fatalf("recv bytes = %d, want %d", got, wantBytes)
		}
		if s.TotalSentBytes() != wantBytes {
			t.Fatalf("total = %d", s.TotalSentBytes())
		}
		s.Reset()
		if s.TotalSentBytes() != 0 || s.SentMessages(KindDependency) != 0 {
			t.Fatal("Reset did not zero counters")
		}
	})
}

// Conservation: across a random all-to-all exchange, total bytes sent
// equals total bytes received, per kind.
func TestStatsConservation(t *testing.T) {
	endpointsUnderTest(t, 4, func(t *testing.T, eps []Endpoint) {
		n := len(eps)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					for m := 0; m < 10; m++ {
						kind := Kind(m % 2)
						payload := make([]byte, (i+j+m)%17)
						if err := eps[i].Send(NodeID(j), kind, int32(m), payload); err != nil {
							t.Error(err)
							return
						}
					}
				}
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					for m := 0; m < 10; m++ {
						if _, err := eps[i].Recv(NodeID(j), Kind(m%2), int32(m)); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}(i)
		}
		wg.Wait()
		for _, kind := range []Kind{KindUpdate, KindDependency} {
			var sent, recv int64
			for _, e := range eps {
				sent += e.Stats().SentBytes(kind)
				recv += e.Stats().ReceivedBytes(kind)
			}
			if sent != recv || sent == 0 {
				t.Fatalf("kind %v: sent %d recv %d", kind, sent, recv)
			}
		}
	})
}

func TestBarrierAllNodesArrive(t *testing.T) {
	endpointsUnderTest(t, 4, func(t *testing.T, eps []Endpoint) {
		var wg sync.WaitGroup
		for _, e := range eps {
			wg.Add(1)
			go func(e Endpoint) {
				defer wg.Done()
				for round := int32(0); round < 5; round++ {
					if err := Barrier(e, round); err != nil {
						t.Error(err)
					}
				}
			}(e)
		}
		wg.Wait()
	})
}

func TestAllReduce(t *testing.T) {
	endpointsUnderTest(t, 4, func(t *testing.T, eps []Endpoint) {
		results := make([]int64, len(eps))
		var wg sync.WaitGroup
		for i, e := range eps {
			wg.Add(1)
			go func(i int, e Endpoint) {
				defer wg.Done()
				r, err := AllReduceInt64(e, int64(i+1), 0, func(a, b int64) int64 { return a + b })
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = r
			}(i, e)
		}
		wg.Wait()
		for i, r := range results {
			if r != 10 { // 1+2+3+4
				t.Fatalf("node %d got %d, want 10", i, r)
			}
		}
	})
}

func TestAllReduceBool(t *testing.T) {
	endpointsUnderTest(t, 3, func(t *testing.T, eps []Endpoint) {
		check := func(inputs []bool, want bool, tag int32) {
			results := make([]bool, len(eps))
			var wg sync.WaitGroup
			for i, e := range eps {
				wg.Add(1)
				go func(i int, e Endpoint) {
					defer wg.Done()
					r, err := AllReduceBool(e, inputs[i], tag)
					if err != nil {
						t.Error(err)
						return
					}
					results[i] = r
				}(i, e)
			}
			wg.Wait()
			for i, r := range results {
				if r != want {
					t.Fatalf("inputs %v: node %d got %v, want %v", inputs, i, r, want)
				}
			}
		}
		check([]bool{false, false, false}, false, 0)
		check([]bool{false, true, false}, true, 1)
	})
}

func TestAllGatherBytes(t *testing.T) {
	endpointsUnderTest(t, 3, func(t *testing.T, eps []Endpoint) {
		out := make([][][]byte, len(eps))
		var wg sync.WaitGroup
		for i, e := range eps {
			wg.Add(1)
			go func(i int, e Endpoint) {
				defer wg.Done()
				blob := []byte(fmt.Sprintf("node-%d", i))
				got, err := AllGatherBytes(e, blob, 0)
				if err != nil {
					t.Error(err)
					return
				}
				out[i] = got
			}(i, e)
		}
		wg.Wait()
		for i := range eps {
			for j := range eps {
				want := fmt.Sprintf("node-%d", j)
				if string(out[i][j]) != want {
					t.Fatalf("node %d slot %d = %q, want %q", i, j, out[i][j], want)
				}
			}
		}
	})
}

func TestSendToInvalidNode(t *testing.T) {
	c := NewMemCluster(2)
	defer c.Close()
	if err := c.Endpoint(0).Send(5, KindUpdate, 0, nil); err == nil {
		t.Fatal("send to node 5 of 2 succeeded")
	}
}

func TestRecvAfterCloseReturnsError(t *testing.T) {
	c := NewMemCluster(2)
	c.Close()
	if _, err := c.Endpoint(1).Recv(0, KindUpdate, 0); err == nil {
		t.Fatal("Recv after Close returned no error")
	}
}

func TestKindString(t *testing.T) {
	if KindUpdate.String() != "update" || KindDependency.String() != "dependency" ||
		KindControl.String() != "control" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func BenchmarkMemSendRecv(b *testing.B) {
	c := NewMemCluster(2)
	defer c.Close()
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Endpoint(0).Send(1, KindUpdate, int32(i), payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Endpoint(1).Recv(0, KindUpdate, int32(i)); err != nil {
			b.Fatal(err)
		}
	}
}
