package comm

import (
	"bytes"
	"errors"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/bufpool"
)

func TestSendBufsRoundTrip(t *testing.T) {
	endpointsUnderTest(t, 2, func(t *testing.T, eps []Endpoint) {
		want := []byte("vectored hello, graph")
		// Three slab buffers with a zero-length one in the middle: the
		// frame on the wire is the concatenation.
		b1 := bufpool.Get(8)
		copy(b1, want[:8])
		b2 := bufpool.Get(0)
		b3 := bufpool.Get(len(want) - 8)
		copy(b3, want[8:])
		if err := eps[0].SendBufs(1, KindUpdate, 9, Buffers{b1, b2, b3}); err != nil {
			t.Fatal(err)
		}
		m, err := eps[1].Recv(0, KindUpdate, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m.Payload, want) {
			t.Fatalf("payload = %q, want %q", m.Payload, want)
		}
		m.Release()
		if m.Payload != nil {
			t.Fatal("Release did not poison the payload")
		}
		m.Release() // idempotent

		// An empty frame (nil Buffers) still delivers.
		if err := eps[0].SendBufs(1, KindDependency, 10, nil); err != nil {
			t.Fatal(err)
		}
		m, err = eps[1].Recv(0, KindDependency, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Payload) != 0 {
			t.Fatalf("empty frame delivered %d bytes", len(m.Payload))
		}
		m.Release()
	})
}

func TestSendBufsToInvalidNode(t *testing.T) {
	endpointsUnderTest(t, 2, func(t *testing.T, eps []Endpoint) {
		if err := eps[0].SendBufs(5, KindUpdate, 0, Buffers{bufpool.Get(16)}); err == nil {
			t.Fatal("SendBufs to out-of-range node succeeded")
		}
	})
}

// sinkConn is an in-memory net.Conn stand-in for exercising the frame
// writer without sockets.
type sinkConn struct {
	bytes.Buffer
}

func (c *sinkConn) Close() error                       { return nil }
func (c *sinkConn) LocalAddr() net.Addr                { return nil }
func (c *sinkConn) RemoteAddr() net.Addr               { return nil }
func (c *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (c *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

// FuzzVecFrameRoundTrip drives the vectored length-prefix framing with
// arbitrary payloads carved at arbitrary split points — including
// zero-length buffers from duplicate cuts — and asserts the decoded
// frame matches byte for byte. Two frames share one conn to pin that
// the per-conn write scratch survives writev's consume.
func FuzzVecFrameRoundTrip(f *testing.F) {
	f.Add(uint32(0), byte(0), int32(0), []byte{}, []byte{})
	f.Add(uint32(3), byte(1), int32(42), []byte("hello vectored world"), []byte{0, 3, 3, 11})
	f.Add(uint32(7), byte(2), int32(-1), bytes.Repeat([]byte{0xAB}, 300), []byte{1, 255, 128})
	f.Fuzz(func(t *testing.T, from uint32, kind byte, tag int32, payload, splits []byte) {
		cuts := make([]int, 0, len(splits)+2)
		cuts = append(cuts, 0)
		for _, s := range splits {
			cuts = append(cuts, int(s)%(len(payload)+1))
		}
		cuts = append(cuts, len(payload))
		sort.Ints(cuts)
		var bufs Buffers
		for i := 1; i < len(cuts); i++ {
			bufs = append(bufs, payload[cuts[i-1]:cuts[i]])
		}

		conn := &sinkConn{}
		tc := &tcpConn{c: conn}
		for frame := 0; frame < 2; frame++ {
			if err := tc.writeFrame(NodeID(from), Kind(kind), tag, bufs); err != nil {
				t.Fatal(err)
			}
		}
		data := conn.Bytes()
		for frame := 0; frame < 2; frame++ {
			if len(data) < headerBytes {
				t.Fatalf("frame %d: %d bytes left, need %d header bytes", frame, len(data), headerBytes)
			}
			gotFrom, gotKind, gotTag, n := parseFrameHeader(data[:headerBytes])
			if gotFrom != NodeID(from) || gotKind != Kind(kind) || gotTag != tag {
				t.Fatalf("frame %d: header (%d,%d,%d), want (%d,%d,%d)",
					frame, gotFrom, gotKind, gotTag, from, kind, tag)
			}
			if n != len(payload) {
				t.Fatalf("frame %d: length %d, want %d", frame, n, len(payload))
			}
			data = data[headerBytes:]
			if !bytes.Equal(data[:n], payload) {
				t.Fatalf("frame %d: payload mismatch", frame)
			}
			data = data[n:]
		}
		if len(data) != 0 {
			t.Fatalf("%d trailing bytes after two frames", len(data))
		}
	})
}

func TestFrameHeaderMaxBoundary(t *testing.T) {
	var hdr [headerBytes]byte
	for _, n := range []int{0, maxFrameSize - 1, maxFrameSize, maxFrameSize + 1} {
		putFrameHeader(hdr[:], 3, KindDependency, 77, n)
		from, kind, tag, got := parseFrameHeader(hdr[:])
		if from != 3 || kind != KindDependency || tag != 77 || got != n {
			t.Fatalf("round-trip of length %d: got (%d,%d,%d,%d)", n, from, kind, tag, got)
		}
	}
}

// TestTCPOversizedFrameClosesInbox pins that a length prefix beyond
// maxFrameSize is treated as stream corruption (peer lost), not trusted
// with an allocation.
func TestTCPOversizedFrameClosesInbox(t *testing.T) {
	eps, err := NewTCPClusterLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer eps[0].Close()
	defer eps[1].Close()
	var hdr [headerBytes]byte
	putFrameHeader(hdr[:], 0, KindUpdate, 0, maxFrameSize+1)
	c := eps[0].conns[1]
	c.mu.Lock()
	_, err = c.c.Write(hdr[:])
	c.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	_, err = eps[1].Recv(0, KindUpdate, 0)
	var ce *ClosedError
	if !errors.As(err, &ce) {
		t.Fatalf("Recv after oversized frame: %v, want *ClosedError", err)
	}
}

// TestSlabReuseNoCrossPollination floods the slab from concurrent
// sender/receiver pairs — every frame acquired from the pool, handed
// off, verified and Released — and checks no receiver ever observes
// another stream's bytes. Run under -race this also pins that the
// pool's recycling establishes happens-before between owners.
func TestSlabReuseNoCrossPollination(t *testing.T) {
	const frames = 200
	const n = 4
	c := NewMemCluster(n)
	defer c.Close()
	eps := c.Endpoints()
	pattern := func(s, r, i int) byte { return byte(s*31 + r*17 + i) }
	size := func(s, r, i int) int { return 1 + (i*37+s*13+r*7)%2000 }
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		for r := 0; r < n; r++ {
			if s == r {
				continue
			}
			wg.Add(2)
			go func(s, r int) {
				defer wg.Done()
				for i := 0; i < frames; i++ {
					buf := bufpool.Get(size(s, r, i))
					pat := pattern(s, r, i)
					for j := range buf {
						buf[j] = pat
					}
					if err := eps[s].SendBufs(NodeID(r), KindUpdate, int32(i), Buffers{buf}); err != nil {
						t.Error(err)
						return
					}
				}
			}(s, r)
			go func(s, r int) {
				defer wg.Done()
				for i := 0; i < frames; i++ {
					m, err := eps[r].Recv(NodeID(s), KindUpdate, int32(i))
					if err != nil {
						t.Error(err)
						return
					}
					if len(m.Payload) != size(s, r, i) {
						t.Errorf("stream %d->%d frame %d: %d bytes, want %d",
							s, r, i, len(m.Payload), size(s, r, i))
						return
					}
					pat := pattern(s, r, i)
					for j, b := range m.Payload {
						if b != pat {
							t.Errorf("stream %d->%d frame %d byte %d: %#x, want %#x",
								s, r, i, j, b, pat)
							return
						}
					}
					m.Release()
				}
			}(s, r)
		}
	}
	wg.Wait()
}

// BenchmarkTCPSendBufs measures the vectored send path end to end over
// a real loopback socket pair: payload from the slab, one writev, slab
// read at the receiver, Release back to the slab. Steady state is
// 0 allocs/op — the acceptance bar for the zero-copy data plane. A
// windowed ack every 32 frames keeps in-flight frames under the pool's
// per-class retention bound so the slab never misses.
func BenchmarkTCPSendBufs(b *testing.B) {
	eps, err := NewTCPClusterLoopback(2)
	if err != nil {
		b.Fatal(err)
	}
	defer eps[0].Close()
	defer eps[1].Close()
	const size = 4096
	const window = 32
	done := make(chan struct{})
	go func() {
		defer close(done)
		for count := 1; ; count++ {
			m, err := eps[1].Recv(0, KindUpdate, 0)
			if err != nil {
				return
			}
			sentinel := len(m.Payload) == 1
			m.Release()
			if sentinel {
				return
			}
			if count%window == 0 {
				if err := eps[1].SendBufs(0, KindControl, 0, Buffers{bufpool.Get(8)}); err != nil {
					return
				}
			}
		}
	}()
	send := func(i int, bufs Buffers) error {
		bufs[0] = bufpool.Get(size)
		if err := eps[0].SendBufs(1, KindUpdate, 0, bufs); err != nil {
			return err
		}
		if (i+1)%window == 0 {
			m, err := eps[0].Recv(1, KindControl, 0)
			if err != nil {
				return err
			}
			m.Release()
		}
		return nil
	}
	bufs := make(Buffers, 1)
	for i := 0; i < 2*window; i++ { // warm the slab and per-conn scratch
		if err := send(i, bufs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := send(i, bufs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	bufs[0] = bufpool.Get(1)
	if err := eps[0].SendBufs(1, KindUpdate, 0, bufs); err != nil {
		b.Fatal(err)
	}
	<-done
}
