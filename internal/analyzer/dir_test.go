package analyzer

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeDir(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "bfs.go"), bfsInput)
	writeFile(t, filepath.Join(dir, "plain.go"), `package udf

func helper() int { return 1 }
`)
	writeFile(t, filepath.Join(dir, "sub", "pr.go"), `package sub

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func prSignal(ctx *core.DenseCtx[float64], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		_ = u
	}
}
`)
	// Files the walker must skip.
	writeFile(t, filepath.Join(dir, "skipped_test.go"), "package udf\n")
	writeFile(t, filepath.Join(dir, "testdata", "golden.go"), "this is not Go")
	writeFile(t, filepath.Join(dir, ".hidden", "x.go"), "also not Go")

	reports, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		paths := make([]string, 0, len(reports))
		for _, r := range reports {
			paths = append(paths, r.Path)
		}
		t.Fatalf("analyzed %v, want 3 files", paths)
	}
	signals, carried := Summary(reports)
	if signals != 2 {
		t.Fatalf("found %d signal UDFs, want 2", signals)
	}
	if carried != 1 {
		t.Fatalf("found %d loop-carried UDFs, want 1", carried)
	}
}

func TestAnalyzeDirRejectsBadFile(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "bad.go"), "not go at all")
	if _, err := AnalyzeDir(dir); err == nil {
		t.Fatal("unparseable file accepted")
	}
}

func TestAnalyzeDirMissing(t *testing.T) {
	if _, err := AnalyzeDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing directory accepted")
	}
}

// The analyzer must find the loop-carried UDF patterns in this
// repository's own algorithm sources — the same self-check the paper's
// tool performs on Gemini's applications.
func TestAnalyzeOwnAlgorithms(t *testing.T) {
	reports, err := AnalyzeDir("../algorithms")
	if err != nil {
		t.Fatal(err)
	}
	signals, carried := Summary(reports)
	if signals == 0 {
		t.Fatal("no signal UDFs found in internal/algorithms")
	}
	// BFS, MIS (veto+cover), K-core, K-means and sampling UDFs all break
	// out of their neighbor loops; PageRank's must not be flagged.
	if carried < 4 {
		t.Fatalf("only %d loop-carried UDFs found in internal/algorithms", carried)
	}
	for _, fr := range reports {
		if filepath.Base(fr.Path) != "pagerank.go" {
			continue
		}
		for _, f := range fr.Report.Funcs {
			if f.LoopCarried {
				t.Fatalf("pagerank signal flagged as loop-carried: %+v", f)
			}
		}
	}
}
