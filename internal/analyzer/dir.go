package analyzer

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileReport pairs a file path with its analysis.
type FileReport struct {
	Path   string
	Report *Report
}

// AnalyzeDir analyzes every .go file under dir (recursively, skipping
// _test.go files, testdata and hidden directories) — the package-level
// counterpart of the paper's whole-translation-unit analysis. Files that
// fail to parse are reported as errors; the rest are analyzed
// independently.
func AnalyzeDir(dir string) ([]FileReport, error) {
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analyzer: walking %s: %w", dir, err)
	}
	sort.Strings(files)
	out := make([]FileReport, 0, len(files))
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		rep, err := Analyze(path, src)
		if err != nil {
			return nil, err
		}
		out = append(out, FileReport{Path: path, Report: rep})
	}
	return out, nil
}

// Summary aggregates directory results: total signal UDFs found and how
// many carry loop dependency.
func Summary(reports []FileReport) (signalFuncs, loopCarried int) {
	for _, fr := range reports {
		signalFuncs += len(fr.Report.Funcs)
		loopCarried += len(fr.Report.LoopCarriedFuncs())
	}
	return signalFuncs, loopCarried
}
