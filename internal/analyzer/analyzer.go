// Package analyzer is SympleGraph's UDF analysis and instrumentation tool
// (paper §4), reimplemented over go/ast instead of clang LibTooling. It
// performs the paper's two passes on Go source containing signal UDFs:
//
//  1. Analysis — locate dense-signal functions (parameters include a
//     *core.DenseCtx[...] context and a neighbor slice), find the loops
//     that traverse neighbors, and decide whether loop-carried dependency
//     exists: a break bound to the neighbor loop (control dependency),
//     possibly together with accumulators declared outside the loop and
//     updated inside it (data dependency, e.g. K-core's count and
//     sampling's prefix sum).
//  2. Instrumentation — a source-to-source transformation that inserts
//     the framework's dependency-communication primitives: ctx.EmitDep()
//     before each neighbor-loop break (the paper's emit_dep, Figure 5)
//     and ctx.Edge() at the top of the loop body (traversal accounting).
//     The receive_dep/skip check of Figure 5 is performed by the engine
//     before the signal is invoked, so no code is inserted for it.
//
// The analyzer is purely syntactic: it keys on the *DenseCtx parameter
// shape rather than resolved types, so it works on isolated files the way
// the paper's tool works on isolated translation units.
package analyzer

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
)

// LoopReport describes one neighbor-traversal loop inside a signal UDF.
type LoopReport struct {
	// Line is the loop's 1-based source line.
	Line int
	// HasBreak reports a break statement bound to this loop — the
	// loop-carried control dependency.
	HasBreak bool
	// Breaks counts such break statements.
	Breaks int
	// LocalBreaks counts bound breaks annotated //sgc:local: declared
	// machine-local early exits (e.g. a re-walk of neighbors already
	// fully scanned) that are not loop-carried dependencies and must
	// not be instrumented.
	LocalBreaks int
	// CarriedVars lists variables declared outside the loop and
	// assigned inside it — candidate loop-carried data-dependency state
	// (the paper's DepMessage data members).
	CarriedVars []string
}

// FuncReport describes one analyzed signal UDF.
type FuncReport struct {
	// Name is the function name, or "<anonymous>" for function
	// literals.
	Name string
	// Line is the function's 1-based source line.
	Line int
	// CtxParam and NeighborParam are the identified parameter names.
	CtxParam, NeighborParam string
	// Loops lists the neighbor-traversal loops found.
	Loops []LoopReport
	// LoopCarried reports whether any neighbor loop breaks — i.e. the
	// UDF needs dependency propagation.
	LoopCarried bool
	// AlreadyInstrumented reports that the function contains EmitDep
	// calls; instrumentation will leave it unchanged.
	AlreadyInstrumented bool
}

// Report is the analysis result for one source file.
type Report struct {
	Funcs []FuncReport
}

// LoopCarriedFuncs returns the names of functions needing dependency
// propagation.
func (r *Report) LoopCarriedFuncs() []string {
	var out []string
	for _, f := range r.Funcs {
		if f.LoopCarried {
			out = append(out, f.Name)
		}
	}
	return out
}

// Analyze parses src (a complete Go file; filename is for positions) and
// runs the analysis pass.
func Analyze(filename string, src []byte) (*Report, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("analyzer: %w", err)
	}
	return analyzeFile(fset, file), nil
}

func analyzeFile(fset *token.FileSet, file *ast.File) *Report {
	rep := &Report{}
	local := LocalDirectiveLines(fset, file)
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fr, ok := analyzeFunc(fset, fn.Name.Name, fn.Type, fn.Body, local); ok {
				rep.Funcs = append(rep.Funcs, fr)
			}
		case *ast.FuncLit:
			if fr, ok := analyzeFunc(fset, "<anonymous>", fn.Type, fn.Body, local); ok {
				rep.Funcs = append(rep.Funcs, fr)
			}
		}
		return true
	})
	return rep
}

// LocalDirectiveLines returns the lines of file carrying an //sgc:local
// directive. The directive declares a bound break to be a machine-local
// early exit rather than a loop-carried dependency: the analysis does
// not count it and the instrumenter does not insert EmitDep before it.
// It applies to a break on the same line or the line directly below the
// comment.
func LocalDirectiveLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			if strings.HasPrefix(strings.TrimSpace(text), "sgc:local") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// isLocalExit reports whether the statement at pos is covered by an
// //sgc:local directive (same line or line above).
func isLocalExit(fset *token.FileSet, local map[int]bool, pos token.Pos) bool {
	if len(local) == 0 {
		return false
	}
	line := fset.Position(pos).Line
	return local[line] || local[line-1]
}

// analyzeFunc recognizes a dense-signal UDF and analyzes its neighbor
// loops.
func analyzeFunc(fset *token.FileSet, name string, typ *ast.FuncType, body *ast.BlockStmt, local map[int]bool) (FuncReport, bool) {
	if body == nil || typ.Params == nil {
		return FuncReport{}, false
	}
	ctxName, nbrName := signalParams(typ)
	if ctxName == "" || nbrName == "" {
		return FuncReport{}, false
	}
	fr := FuncReport{
		Name:          name,
		Line:          fset.Position(typ.Pos()).Line,
		CtxParam:      ctxName,
		NeighborParam: nbrName,
	}
	fr.AlreadyInstrumented = containsCall(body, ctxName, "EmitDep")
	for _, loop := range neighborLoops(body, nbrName) {
		lr := LoopReport{Line: fset.Position(loop.Pos()).Line}
		for _, br := range loopBreaks(loop) {
			if isLocalExit(fset, local, br.Pos()) {
				lr.LocalBreaks++
				continue
			}
			lr.Breaks++
		}
		lr.HasBreak = lr.Breaks > 0
		lr.CarriedVars = carriedVars(loop, body)
		fr.Loops = append(fr.Loops, lr)
		if lr.HasBreak {
			fr.LoopCarried = true
		}
	}
	return fr, true
}

// signalParams identifies the context and neighbor-slice parameters of a
// dense-signal UDF: a pointer-to-DenseCtx parameter and a slice-of-
// VertexID parameter. Empty strings mean "not a signal UDF".
func signalParams(typ *ast.FuncType) (ctxName, nbrName string) {
	for _, field := range typ.Params.List {
		switch {
		case isDenseCtxPtr(field.Type):
			if len(field.Names) > 0 && ctxName == "" {
				ctxName = field.Names[0].Name
			}
		case isVertexSlice(field.Type):
			if len(field.Names) > 0 && nbrName == "" {
				nbrName = field.Names[0].Name
			}
		}
	}
	return ctxName, nbrName
}

// isDenseCtxPtr matches *pkg.DenseCtx[...] and *DenseCtx[...].
func isDenseCtxPtr(e ast.Expr) bool {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	inner := star.X
	if idx, ok := inner.(*ast.IndexExpr); ok {
		inner = idx.X
	} else if idx, ok := inner.(*ast.IndexListExpr); ok {
		inner = idx.X
	}
	return typeName(inner) == "DenseCtx"
}

// isVertexSlice matches []pkg.VertexID and []VertexID.
func isVertexSlice(e ast.Expr) bool {
	arr, ok := e.(*ast.ArrayType)
	if !ok || arr.Len != nil {
		return false
	}
	return typeName(arr.Elt) == "VertexID"
}

// typeName returns the rightmost identifier of a (possibly selector)
// type expression.
func typeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return ""
}

// neighborLoop is a loop that traverses the neighbor parameter — either
// a range loop over it or a C-style index loop bounded by its length.
type neighborLoop struct {
	rng *ast.RangeStmt // nil for index loops
	fr  *ast.ForStmt   // nil for range loops
}

func (nl neighborLoop) Pos() token.Pos {
	if nl.rng != nil {
		return nl.rng.Pos()
	}
	return nl.fr.Pos()
}

func (nl neighborLoop) body() *ast.BlockStmt {
	if nl.rng != nil {
		return nl.rng.Body
	}
	return nl.fr.Body
}

// neighborLoops returns the loops over the neighbor parameter, anywhere
// in the body (the paper's analyzer similarly searches "all for-loops
// that traverse neighbors"): `for _, u := range srcs` and
// `for i := 0; i < len(srcs); i++` shapes both count.
func neighborLoops(body *ast.BlockStmt, nbrName string) []neighborLoop {
	var loops []neighborLoop
	ast.Inspect(body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.RangeStmt:
			if id, ok := l.X.(*ast.Ident); ok && id.Name == nbrName {
				loops = append(loops, neighborLoop{rng: l})
			}
		case *ast.ForStmt:
			if forBoundsOnLen(l, nbrName) {
				loops = append(loops, neighborLoop{fr: l})
			}
		}
		return true
	})
	return loops
}

// forBoundsOnLen reports whether the for condition compares against
// len(nbrName) — the index-loop traversal shape.
func forBoundsOnLen(l *ast.ForStmt, nbrName string) bool {
	bin, ok := l.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	isLen := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "len" || len(call.Args) != 1 {
			return false
		}
		arg, ok := call.Args[0].(*ast.Ident)
		return ok && arg.Name == nbrName
	}
	return isLen(bin.X) || isLen(bin.Y)
}

// loopBreaks returns the break statements that bind to this loop.
func loopBreaks(loop neighborLoop) []*ast.BranchStmt {
	return BoundBreaks(loop.body())
}

// BoundBreaks returns the break statements in loopBody that bind to the
// loop owning that body: plain breaks not captured by a nested
// for/range/switch/select. The binding rules mirror the Go spec. Labeled
// breaks are conservatively treated as not-ours (the loop's label is not
// visible from its own body, and a labeled break to an *outer* statement
// must not count). Shared by this syntactic pass and the type-resolved
// pass in analyzer/typed, so both agree on what "a neighbor-loop break"
// means.
func BoundBreaks(loopBody *ast.BlockStmt) []*ast.BranchStmt {
	var out []*ast.BranchStmt
	var walk func(n ast.Stmt, inOurLoop bool)
	walk = func(n ast.Stmt, inOurLoop bool) {
		switch s := n.(type) {
		case nil:
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && s.Label == nil && inOurLoop {
				out = append(out, s)
			}
		case *ast.BlockStmt:
			for _, st := range s.List {
				walk(st, inOurLoop)
			}
		case *ast.IfStmt:
			walk(s.Body, inOurLoop)
			walk(s.Else, inOurLoop)
		case *ast.ForStmt:
			// A nested loop captures plain breaks.
			walk(s.Body, false)
		case *ast.RangeStmt:
			walk(s.Body, false)
		case *ast.SwitchStmt:
			walk(s.Body, false)
		case *ast.TypeSwitchStmt:
			walk(s.Body, false)
		case *ast.SelectStmt:
			walk(s.Body, false)
		case *ast.CaseClause:
			for _, st := range s.Body {
				walk(st, inOurLoop)
			}
		case *ast.CommClause:
			for _, st := range s.Body {
				walk(st, inOurLoop)
			}
		case *ast.LabeledStmt:
			walk(s.Stmt, inOurLoop)
		}
	}
	walk(loopBody, true)
	return out
}

// carriedVars lists identifiers assigned inside the loop but declared
// outside it within the function — loop-carried data state. Loop
// iteration variables and blank identifiers are excluded.
func carriedVars(loop neighborLoop, body *ast.BlockStmt) []string {
	declaredInLoop := map[string]bool{}
	if loop.rng != nil {
		if id, ok := loop.rng.Key.(*ast.Ident); ok && id.Name != "_" {
			declaredInLoop[id.Name] = true
		}
		if id, ok := loop.rng.Value.(*ast.Ident); ok && id.Name != "_" {
			declaredInLoop[id.Name] = true
		}
	} else if init, ok := loop.fr.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
		for _, lhs := range init.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				declaredInLoop[id.Name] = true
			}
		}
	}
	ast.Inspect(loop.body(), func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					declaredInLoop[id.Name] = true
				}
			}
		}
		return true
	})

	declaredOutside := map[string]bool{}
	collect := func(n ast.Node) bool {
		// Skip the loop subtree itself.
		if n == ast.Node(loop.rng) && loop.rng != nil {
			return false
		}
		if n == ast.Node(loop.fr) && loop.fr != nil {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						declaredOutside[id.Name] = true
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							declaredOutside[id.Name] = true
						}
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, collect)

	seen := map[string]bool{}
	var out []string
	ast.Inspect(loop.body(), func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if s.Tok == token.DEFINE || declaredInLoop[id.Name] || !declaredOutside[id.Name] {
					continue
				}
				if !seen[id.Name] {
					seen[id.Name] = true
					out = append(out, id.Name)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && declaredOutside[id.Name] && !declaredInLoop[id.Name] && !seen[id.Name] {
				seen[id.Name] = true
				out = append(out, id.Name)
			}
		}
		return true
	})
	return out
}

// containsCall reports whether body contains a recv.method(...) call.
func containsCall(body *ast.BlockStmt, recv, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv && sel.Sel.Name == method {
			found = true
		}
		return true
	})
	return found
}

// String renders the report in the tool's human format.
func (r *Report) String() string {
	var b strings.Builder
	for _, f := range r.Funcs {
		fmt.Fprintf(&b, "func %s (line %d): ctx=%s neighbors=%s", f.Name, f.Line, f.CtxParam, f.NeighborParam)
		if f.AlreadyInstrumented {
			b.WriteString(" [instrumented]")
		}
		b.WriteString("\n")
		for _, l := range f.Loops {
			fmt.Fprintf(&b, "  loop at line %d: breaks=%d", l.Line, l.Breaks)
			if len(l.CarriedVars) > 0 {
				fmt.Fprintf(&b, " carried=%v", l.CarriedVars)
			}
			b.WriteString("\n")
		}
		if f.LoopCarried {
			b.WriteString("  => loop-carried dependency: instrument with EmitDep\n")
		} else {
			b.WriteString("  => no loop-carried dependency\n")
		}
	}
	return b.String()
}
