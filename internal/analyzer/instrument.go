package analyzer

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
)

// Instrument runs the source-to-source transformation pass (paper §4.2)
// on a complete Go file: in every dense-signal UDF with loop-carried
// dependency it inserts ctx.EmitDep() immediately before each break bound
// to a neighbor loop, and ctx.Edge() as the loop body's first statement.
// Functions already containing EmitDep calls are left untouched
// (idempotence). It returns the formatted transformed source and the
// analysis report.
func Instrument(filename string, src []byte) ([]byte, *Report, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, nil, fmt.Errorf("analyzer: %w", err)
	}
	rep := analyzeFile(fset, file)
	local := LocalDirectiveLines(fset, file)

	ast.Inspect(file, func(n ast.Node) bool {
		var typ *ast.FuncType
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			typ, body = fn.Type, fn.Body
		case *ast.FuncLit:
			typ, body = fn.Type, fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		ctxName, nbrName := signalParams(typ)
		if ctxName == "" || nbrName == "" {
			return true
		}
		if containsCall(body, ctxName, "EmitDep") {
			return true // already instrumented
		}
		for _, loop := range neighborLoops(body, nbrName) {
			instrumentLoop(fset, loop, ctxName, local)
		}
		return true
	})

	var buf bytes.Buffer
	if err := format.Node(&buf, fset, file); err != nil {
		return nil, nil, fmt.Errorf("analyzer: formatting instrumented source: %w", err)
	}
	return buf.Bytes(), rep, nil
}

// instrumentLoop inserts ctx.Edge() at the loop head (unless present)
// and ctx.EmitDep() before each break bound to the loop. Breaks under
// an //sgc:local directive are declared machine-local and skipped.
func instrumentLoop(fset *token.FileSet, loop neighborLoop, ctxName string, local map[int]bool) {
	breaks := map[*ast.BranchStmt]bool{}
	for _, br := range loopBreaks(loop) {
		if isLocalExit(fset, local, br.Pos()) {
			continue
		}
		breaks[br] = true
	}
	body := loop.body()
	insertBeforeBreaks(body, breaks, ctxName)
	if !startsWithCall(body, ctxName, "Edge") {
		body.List = append([]ast.Stmt{callStmt(ctxName, "Edge")}, body.List...)
	}
}

func startsWithCall(body *ast.BlockStmt, recv, method string) bool {
	if len(body.List) == 0 {
		return false
	}
	es, ok := body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == recv && sel.Sel.Name == method
}

// insertBeforeBreaks rewrites statement lists so that each break in
// `breaks` is preceded by ctx.EmitDep(). It recurses exactly along the
// paths loopBreaks walked, so nested loops and switches are untouched.
func insertBeforeBreaks(n ast.Stmt, breaks map[*ast.BranchStmt]bool, ctxName string) {
	switch s := n.(type) {
	case *ast.BlockStmt:
		s.List = rewriteList(s.List, breaks, ctxName)
	case *ast.IfStmt:
		insertBeforeBreaks(s.Body, breaks, ctxName)
		if s.Else != nil {
			insertBeforeBreaks(s.Else, breaks, ctxName)
		}
	case *ast.CaseClause:
		s.Body = rewriteList(s.Body, breaks, ctxName)
	case *ast.CommClause:
		s.Body = rewriteList(s.Body, breaks, ctxName)
	case *ast.LabeledStmt:
		insertBeforeBreaks(s.Stmt, breaks, ctxName)
	}
}

func rewriteList(list []ast.Stmt, breaks map[*ast.BranchStmt]bool, ctxName string) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(list))
	for _, st := range list {
		if br, ok := st.(*ast.BranchStmt); ok && breaks[br] {
			out = append(out, callStmt(ctxName, "EmitDep"), st)
			continue
		}
		insertBeforeBreaks(st, breaks, ctxName)
		out = append(out, st)
	}
	return out
}

// callStmt builds the statement `recv.method()`.
func callStmt(recv, method string) ast.Stmt {
	return &ast.ExprStmt{X: &ast.CallExpr{
		Fun: &ast.SelectorExpr{X: ast.NewIdent(recv), Sel: ast.NewIdent(method)},
	}}
}
