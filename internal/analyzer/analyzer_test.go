package analyzer

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const bfsInput = `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// bfsSignal is the bottom-up BFS dense signal as a user writes it
// (paper Figure 1b): plain control flow with a break.
func bfsSignal(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, weights []float32) {
	for _, u := range srcs {
		if frontier.Get(int(u)) {
			ctx.Emit(uint32(u))
			break
		}
	}
}
`

const bfsWant = `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// bfsSignal is the bottom-up BFS dense signal as a user writes it
// (paper Figure 1b): plain control flow with a break.
func bfsSignal(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, weights []float32) {
	for _, u := range srcs {
		ctx.Edge()
		if frontier.Get(int(u)) {
			ctx.Emit(uint32(u))
			ctx.EmitDep()
			break
		}
	}
}
`

func TestAnalyzeDetectsLoopCarriedDependency(t *testing.T) {
	rep, err := Analyze("bfs.go", []byte(bfsInput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Funcs) != 1 {
		t.Fatalf("found %d signal funcs, want 1", len(rep.Funcs))
	}
	f := rep.Funcs[0]
	if f.Name != "bfsSignal" || f.CtxParam != "ctx" || f.NeighborParam != "srcs" {
		t.Fatalf("got %+v", f)
	}
	if !f.LoopCarried || f.AlreadyInstrumented {
		t.Fatalf("got %+v", f)
	}
	if len(f.Loops) != 1 || f.Loops[0].Breaks != 1 {
		t.Fatalf("loops: %+v", f.Loops)
	}
	if got := rep.LoopCarriedFuncs(); len(got) != 1 || got[0] != "bfsSignal" {
		t.Fatalf("LoopCarriedFuncs = %v", got)
	}
	if !strings.Contains(rep.String(), "loop-carried dependency") {
		t.Fatalf("report rendering: %q", rep.String())
	}
}

func TestInstrumentMatchesFigure5(t *testing.T) {
	got, rep, err := Instrument("bfs.go", []byte(bfsInput))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != bfsWant {
		t.Fatalf("instrumented output:\n%s\nwant:\n%s", got, bfsWant)
	}
	if !rep.Funcs[0].LoopCarried {
		t.Fatal("report lost dependency flag")
	}
	// Output must be parseable Go.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "out.go", got, 0); err != nil {
		t.Fatalf("output does not parse: %v", err)
	}
}

func TestInstrumentIsIdempotent(t *testing.T) {
	once, _, err := Instrument("bfs.go", []byte(bfsInput))
	if err != nil {
		t.Fatal(err)
	}
	twice, rep, err := Instrument("bfs.go", once)
	if err != nil {
		t.Fatal(err)
	}
	if string(once) != string(twice) {
		t.Fatalf("second pass changed output:\n%s", twice)
	}
	if !rep.Funcs[0].AlreadyInstrumented {
		t.Fatal("second pass did not flag instrumented function")
	}
}

func TestAnalyzeDataDependency(t *testing.T) {
	src := `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// kcoreSignal counts active neighbors, exiting at K — control AND data
// dependency (paper Figure 3b).
func kcoreSignal(ctx *core.DenseCtx[int64], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	cnt := 0
	for _, u := range srcs {
		if active.Get(int(u)) {
			cnt++
			if cnt >= k {
				break
			}
		}
	}
	ctx.Emit(int64(cnt))
}
`
	rep, err := Analyze("kcore.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Funcs[0]
	if !f.LoopCarried {
		t.Fatal("missed control dependency")
	}
	if len(f.Loops[0].CarriedVars) != 1 || f.Loops[0].CarriedVars[0] != "cnt" {
		t.Fatalf("carried vars = %v, want [cnt]", f.Loops[0].CarriedVars)
	}
}

func TestAnalyzeNoDependency(t *testing.T) {
	src := `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// pagerankSignal has no break: no loop-carried dependency.
func pagerankSignal(ctx *core.DenseCtx[float64], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	sum := 0.0
	for _, u := range srcs {
		sum += rank[u]
	}
	ctx.Emit(sum)
}
`
	rep, err := Analyze("pr.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Funcs[0]
	if f.LoopCarried {
		t.Fatal("false positive dependency")
	}
	if len(f.Loops) != 1 || f.Loops[0].HasBreak {
		t.Fatalf("loops: %+v", f.Loops)
	}
	// Instrumentation still adds traversal accounting but no EmitDep.
	out, _, err := Instrument("pr.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "ctx.Edge()") {
		t.Fatal("Edge accounting missing")
	}
	if strings.Contains(string(out), "EmitDep") {
		t.Fatal("EmitDep inserted without dependency")
	}
}

func TestBreakBindingRules(t *testing.T) {
	src := `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func nested(ctx *core.DenseCtx[uint32], srcs []graph.VertexID) {
	for _, u := range srcs {
		// A break inside a nested loop binds to the inner loop, not
		// the neighbor loop.
		for i := 0; i < 3; i++ {
			if i == 1 {
				break
			}
		}
		// A break inside a switch binds to the switch.
		switch u {
		case 0:
			break
		}
		_ = u
	}
}
`
	rep, err := Analyze("nested.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Funcs) != 1 {
		t.Fatalf("funcs: %d", len(rep.Funcs))
	}
	if rep.Funcs[0].LoopCarried {
		t.Fatal("nested/switch breaks misattributed to the neighbor loop")
	}
	out, _, err := Instrument("nested.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "EmitDep") {
		t.Fatalf("EmitDep inserted for non-binding breaks:\n%s", out)
	}
}

func TestBreakInsideSwitchCaseBindingToLoop(t *testing.T) {
	// A break in an if inside a case binds to the switch; but a break
	// in the loop body after the switch binds to the loop.
	src := `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func mixed(ctx *core.DenseCtx[uint32], srcs []graph.VertexID) {
	for _, u := range srcs {
		if u == 5 {
			break
		}
		_ = u
	}
}
`
	rep, err := Analyze("mixed.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Funcs[0].LoopCarried {
		t.Fatal("direct break missed")
	}
}

func TestFunctionLiteralsAnalyzed(t *testing.T) {
	src := `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

var signal = func(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		if frontier.Get(int(u)) {
			ctx.Emit(uint32(u))
			break
		}
	}
}
`
	rep, err := Analyze("lit.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Funcs) != 1 || rep.Funcs[0].Name != "<anonymous>" || !rep.Funcs[0].LoopCarried {
		t.Fatalf("got %+v", rep.Funcs)
	}
	out, _, err := Instrument("lit.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "ctx.EmitDep()") {
		t.Fatalf("literal not instrumented:\n%s", out)
	}
}

func TestNonSignalFunctionsIgnored(t *testing.T) {
	src := `package udf

func plain(a int, b []string) {
	for _, s := range b {
		if s == "" {
			break
		}
	}
}
`
	rep, err := Analyze("plain.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Funcs) != 0 {
		t.Fatalf("non-signal function analyzed: %+v", rep.Funcs)
	}
	out, _, err := Instrument("plain.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "EmitDep") || strings.Contains(string(out), "Edge()") {
		t.Fatal("non-signal function instrumented")
	}
}

func TestMultipleBreaksAllInstrumented(t *testing.T) {
	src := `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func multi(ctx *core.DenseCtx[uint32], srcs []graph.VertexID) {
	for _, u := range srcs {
		if u == 1 {
			break
		}
		if u == 2 {
			break
		}
	}
}
`
	out, rep, err := Instrument("multi.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Funcs[0].Loops[0].Breaks != 2 {
		t.Fatalf("breaks = %d", rep.Funcs[0].Loops[0].Breaks)
	}
	if got := strings.Count(string(out), "ctx.EmitDep()"); got != 2 {
		t.Fatalf("%d EmitDep insertions, want 2:\n%s", got, out)
	}
}

func TestAnalyzeRejectsBadSource(t *testing.T) {
	if _, err := Analyze("bad.go", []byte("not go")); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, _, err := Instrument("bad.go", []byte("func {")); err == nil {
		t.Fatal("bad source accepted by Instrument")
	}
}

func TestSampleUDFCarriedPrefixSum(t *testing.T) {
	src := `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// sampleSignal walks the weight prefix sum — data dependency carried in
// the accumulator (paper Figure 3d).
func sampleSignal(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	weight := 0.0
	for _, u := range srcs {
		weight += weightOf(u)
		if weight >= r {
			ctx.Emit(uint32(u))
			break
		}
	}
}
`
	rep, err := Analyze("sample.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Funcs[0]
	if !f.LoopCarried || len(f.Loops[0].CarriedVars) != 1 || f.Loops[0].CarriedVars[0] != "weight" {
		t.Fatalf("got %+v", f)
	}
}

func TestIndexLoopDetectedAndInstrumented(t *testing.T) {
	src := `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// indexed walks neighbors C-style, with parallel weights — the shape the
// weighted-sampling UDF takes.
func indexed(ctx *core.DenseCtx[uint32], srcs []graph.VertexID, ws []float32) {
	acc := 0.0
	for i := 0; i < len(srcs); i++ {
		acc += float64(ws[i])
		if acc >= r {
			ctx.Emit(uint32(srcs[i]))
			break
		}
	}
}
`
	rep, err := Analyze("idx.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Funcs) != 1 {
		t.Fatalf("funcs: %+v", rep.Funcs)
	}
	f := rep.Funcs[0]
	if !f.LoopCarried || len(f.Loops) != 1 {
		t.Fatalf("index loop missed: %+v", f)
	}
	if len(f.Loops[0].CarriedVars) != 1 || f.Loops[0].CarriedVars[0] != "acc" {
		t.Fatalf("carried vars: %v", f.Loops[0].CarriedVars)
	}
	out, _, err := Instrument("idx.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "ctx.EmitDep()") || !strings.Contains(string(out), "ctx.Edge()") {
		t.Fatalf("index loop not instrumented:\n%s", out)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "out.go", out, 0); err != nil {
		t.Fatalf("output does not parse: %v", err)
	}
}

func TestUnboundedForLoopIgnored(t *testing.T) {
	src := `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func other(ctx *core.DenseCtx[uint32], srcs []graph.VertexID) {
	for i := 0; i < 10; i++ { // not a neighbor loop
		if i == 3 {
			break
		}
	}
}
`
	rep, err := Analyze("o.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Funcs[0].LoopCarried || len(rep.Funcs[0].Loops) != 0 {
		t.Fatalf("non-neighbor for loop misdetected: %+v", rep.Funcs[0])
	}
}

// TestInstrumentIdempotentOnTree re-instruments every shipped algorithm
// kernel: the first pass must be a byte-identical no-op (the tree is
// committed instrumented), and a second pass over the output must also
// be byte-identical — `sgc instrument -w` run twice never dirties a
// file. This is the regression fence for the idempotence contract.
func TestInstrumentIdempotentOnTree(t *testing.T) {
	dir := filepath.Join("..", "algorithms")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		once, _, err := Instrument(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(once) != string(src) {
			t.Errorf("%s: instrumenting the committed tree changed it — either the kernel is uninstrumented or the rewrite is not idempotent", name)
		}
		twice, _, err := Instrument(name, once)
		if err != nil {
			t.Fatalf("%s second pass: %v", name, err)
		}
		if string(twice) != string(once) {
			t.Errorf("%s: second instrument pass changed bytes", name)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no algorithm sources checked")
	}
}

// TestInstrumentRespectsLocalDirective pins the //sgc:local contract: a
// break declared machine-local (sampling's hierarchical fallback pick)
// must not get an EmitDep inserted, while an unannotated break in the
// same file still does.
func TestInstrumentRespectsLocalDirective(t *testing.T) {
	src := `package udf

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func s(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		if active.Get(int(u)) {
			break //sgc:local full local scan already done above
		}
	}
	for _, u := range srcs {
		if active.Get(int(u)) {
			break
		}
	}
}
`
	out, rep, err := Instrument("local.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(out), "ctx.EmitDep()"); n != 1 {
		t.Fatalf("want exactly 1 inserted EmitDep (the unannotated break), got %d:\n%s", n, out)
	}
	f := rep.Funcs[0]
	if len(f.Loops) != 2 {
		t.Fatalf("loops: %+v", f.Loops)
	}
	if f.Loops[0].Breaks != 0 || f.Loops[0].LocalBreaks != 1 {
		t.Fatalf("annotated loop miscounted: %+v", f.Loops[0])
	}
	if f.Loops[1].Breaks != 1 || f.Loops[1].LocalBreaks != 0 {
		t.Fatalf("plain loop miscounted: %+v", f.Loops[1])
	}
	// Idempotence across the directive: re-instrumenting must not touch
	// the annotated break either.
	twice, _, err := Instrument("local.go", out)
	if err != nil {
		t.Fatal(err)
	}
	if string(twice) != string(out) {
		t.Fatalf("re-instrument changed directive-bearing file:\n%s", twice)
	}
}
