package analyzer

import (
	"go/parser"
	"go/token"
	"testing"
)

// FuzzInstrument checks that instrumentation of arbitrary Go source never
// panics and that its output always parses when the input did.
func FuzzInstrument(f *testing.F) {
	f.Add(bfsInput)
	f.Add("package p\n")
	f.Add("not go")
	f.Add(`package p

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func s(ctx *core.DenseCtx[uint32], srcs []graph.VertexID) {
	for i := 0; i < len(srcs); i++ {
		switch srcs[i] {
		case 0:
			break
		default:
			if srcs[i] > 5 {
				break
			}
		}
	}
}
`)
	f.Fuzz(func(t *testing.T, src string) {
		out, _, err := Instrument("fuzz.go", []byte(src))
		if err != nil {
			return
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "out.go", out, 0); err != nil {
			t.Fatalf("instrumented output does not parse: %v\ninput:\n%s\noutput:\n%s", err, src, out)
		}
	})
}
