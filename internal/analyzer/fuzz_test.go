package analyzer

import (
	"go/parser"
	"go/token"
	"testing"
)

// FuzzInstrument checks that instrumentation of arbitrary Go source never
// panics and that its output always parses when the input did.
func FuzzInstrument(f *testing.F) {
	f.Add(bfsInput)
	f.Add("package p\n")
	f.Add("not go")
	f.Add(`package p

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func s(ctx *core.DenseCtx[uint32], srcs []graph.VertexID) {
	for i := 0; i < len(srcs); i++ {
		switch srcs[i] {
		case 0:
			break
		default:
			if srcs[i] > 5 {
				break
			}
		}
	}
}
`)
	// Interprocedural shape: the neighbor slice escapes into a helper
	// whose loop exits early. The syntactic instrumenter must leave the
	// UDF alone (nothing it can rewrite) yet stay stable under
	// re-instrumentation; the typed pass is what reports these.
	f.Add(`package p

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func s(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	if first(srcs) >= 0 {
		ctx.Emit(uint32(dst))
	}
}

func first(srcs []graph.VertexID) int {
	for i := range srcs {
		if srcs[i] == 0 {
			return i
		}
	}
	return -1
}
`)
	// Aliased context and neighbor slice: the spelled names differ from
	// the parameters.
	f.Add(`package p

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func s(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	c := ctx
	ns := srcs
	for _, u := range ns {
		c.Edge()
		if u == dst {
			break
		}
	}
}
`)
	// Machine-local exit directive: must survive instrumentation
	// untouched.
	f.Add(`package p

import (
	"repro/internal/core"
	"repro/internal/graph"
)

func s(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		if u == dst {
			break //sgc:local
		}
	}
}
`)
	f.Fuzz(func(t *testing.T, src string) {
		out, _, err := Instrument("fuzz.go", []byte(src))
		if err != nil {
			return
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "out.go", out, 0); err != nil {
			t.Fatalf("instrumented output does not parse: %v\ninput:\n%s\noutput:\n%s", err, src, out)
		}
		// Instrumentation is a fixed point: a second pass over valid
		// output must be a byte-identical no-op.
		again, _, err := Instrument("fuzz.go", out)
		if err != nil {
			t.Fatalf("second pass errored on own output: %v\noutput:\n%s", err, out)
		}
		if string(again) != string(out) {
			t.Fatalf("instrument not idempotent\ninput:\n%s\nfirst:\n%s\nsecond:\n%s", src, out, again)
		}
	})
}
