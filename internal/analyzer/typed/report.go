package typed

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analyzer"
)

// Document is the stable JSON schema emitted by `sgc analyze -json`, in
// both typed and syntactic modes. Mode records which pass produced it so
// downstream tooling knows how much to trust the report: "typed" reports
// are resolution-precise; "syntactic" reports are the isolated-file
// fallback and can miss aliased contexts and helper breaks.
type Document struct {
	Mode     string          `json:"mode"` // "typed" | "syntactic"
	Packages []PackageReport `json:"packages"`
}

// MarshalIndent renders the document as stable, indented JSON.
func (d *Document) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// AnalyzeTargets runs the typed analysis over the given targets (files
// or directories). Directories are loaded as packages; a lone file is
// loaded with its surrounding directory so its imports resolve. When
// typed loading fails for a target — it is outside any module, or its
// package does not type-check at all — the syntactic pass runs on the
// file(s) instead and the result is folded into the same document with
// Mode "syntactic" for that package. The returned error is non-nil only
// when a target cannot be analyzed by either pass.
func AnalyzeTargets(targets ...string) (*Document, error) {
	doc := &Document{Mode: "typed"}
	var loader *Loader // lazily constructed per run; memoizes across targets
	for _, target := range targets {
		fi, err := os.Stat(target)
		if err != nil {
			return nil, err
		}
		dir := target
		if !fi.IsDir() {
			dir = filepath.Dir(target)
		}
		pr, terr := analyzeTypedDir(&loader, dir, target, fi.IsDir())
		if terr == nil {
			doc.Packages = append(doc.Packages, *pr)
			continue
		}
		// Fallback: the paper-style isolated-file pass.
		pr, serr := analyzeSyntactic(target, fi.IsDir())
		if serr != nil {
			return nil, fmt.Errorf("typed analysis failed (%v); syntactic fallback failed: %w", terr, serr)
		}
		doc.Mode = "syntactic"
		doc.Packages = append(doc.Packages, *pr)
	}
	return doc, nil
}

// AnalyzeTargetsSyntactic forces the isolated-file pass over every
// target, producing the same document shape as AnalyzeTargets with Mode
// "syntactic". This is what `sgc analyze -json` (without -typed) emits:
// the paper's per-translation-unit analysis, faithful to the prototype's
// per-file view.
func AnalyzeTargetsSyntactic(targets ...string) (*Document, error) {
	doc := &Document{Mode: "syntactic"}
	for _, target := range targets {
		fi, err := os.Stat(target)
		if err != nil {
			return nil, err
		}
		pr, err := analyzeSyntactic(target, fi.IsDir())
		if err != nil {
			return nil, err
		}
		doc.Packages = append(doc.Packages, *pr)
	}
	return doc, nil
}

// analyzeTypedDir loads dir as a package and analyzes it. When the
// target was a single file, the report is filtered to that file.
func analyzeTypedDir(loader **Loader, dir, target string, isDir bool) (*PackageReport, error) {
	if *loader == nil {
		l, err := NewLoader(Config{ModuleRoot: moduleRootFor(dir)})
		if err != nil {
			return nil, err
		}
		*loader = l
	}
	pkg, err := (*loader).LoadDir(dir)
	if err != nil {
		return nil, err
	}
	rep := AnalyzePackage(pkg)
	if !isDir {
		base := filepath.Base(target)
		kept := rep.Funcs[:0]
		for _, f := range rep.Funcs {
			if f.File == base {
				kept = append(kept, f)
			}
		}
		rep.Funcs = kept
	}
	return rep, nil
}

// moduleRootFor finds the module root above dir, or "" to let NewLoader
// fall back to the working directory.
func moduleRootFor(dir string) string {
	root, err := findModuleRoot(dir)
	if err != nil {
		return ""
	}
	return root
}

// analyzeSyntactic runs the isolated-file pass over a file or directory
// and converts its reports into the typed document shape.
func analyzeSyntactic(target string, isDir bool) (*PackageReport, error) {
	pr := &PackageReport{Dir: target, ImportPath: "file:" + filepath.ToSlash(target)}
	if isDir {
		reports, err := analyzer.AnalyzeDir(target)
		if err != nil {
			return nil, err
		}
		for _, fr := range reports {
			appendSyntactic(pr, fr.Path, fr.Report)
		}
		return pr, nil
	}
	src, err := os.ReadFile(target)
	if err != nil {
		return nil, err
	}
	rep, err := analyzer.Analyze(target, src)
	if err != nil {
		return nil, err
	}
	appendSyntactic(pr, target, rep)
	return pr, nil
}

// appendSyntactic converts one syntactic file report. The syntactic
// pass has no notion of exit coverage beyond "an EmitDep call appears
// somewhere in the function", so Instrumented is mapped coarsely.
func appendSyntactic(pr *PackageReport, path string, rep *analyzer.Report) {
	for _, f := range rep.Funcs {
		fr := FuncReport{
			Name:          f.Name,
			File:          filepath.Base(path),
			Line:          f.Line,
			CtxParam:      f.CtxParam,
			NeighborParam: f.NeighborParam,
			LoopCarried:   f.LoopCarried,
		}
		switch {
		case !f.LoopCarried:
			fr.Instrumented = InstrumentedNotNeeded
		case f.AlreadyInstrumented:
			fr.Instrumented = InstrumentedYes
		default:
			fr.Instrumented = InstrumentedNo
		}
		for _, l := range f.Loops {
			lr := LoopReport{Line: l.Line, Breaks: l.Breaks}
			for _, v := range l.CarriedVars {
				lr.Carried = append(lr.Carried, CarriedVar{Name: v, Access: "readwrite"})
			}
			fr.Loops = append(fr.Loops, lr)
		}
		pr.Funcs = append(pr.Funcs, fr)
	}
}
