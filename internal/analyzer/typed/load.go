// Package typed is the type-resolved half of SympleGraph's §4 UDF
// analysis. The syntactic pass in internal/analyzer keys on parameter
// *shape* (a pointer parameter whose type is spelled DenseCtx) so it can
// run on an isolated file; this package loads whole packages, resolves
// types with go/types, and re-runs the analysis over resolved objects:
//
//   - a signal UDF is a function with a parameter of resolved type
//     *core.DenseCtx[M] and one of resolved type []graph.VertexID —
//     regardless of what the parameters are named or how the types are
//     spelled at the use site;
//   - neighbor loops are found through local aliases of the neighbor
//     slice (ns := srcs; for _, u := range ns), and EmitDep calls are
//     recognized through aliases of the context (c := ctx; c.EmitDep());
//   - break detection is interprocedural: a UDF that hands the neighbor
//     slice to a helper whose loop exits early carries the dependency
//     even though the UDF itself contains no loop.
//
// Package loading and type resolution live in the shared
// internal/loader package — one loader serves this analysis, the sgvet
// invariant suite, and cmd/sgvet's vettool mode. The aliases below keep
// this package's historical API surface, so analyses keep reading
// typed.Package while resolution policy is maintained in one place.
package typed

import "repro/internal/loader"

// Package is one loaded, type-checked package (alias of the shared
// loader's type — a *typed.Package and a *loader.Package are the same
// value).
type Package = loader.Package

// Config parameterizes a Loader.
type Config = loader.Config

// Loader loads and type-checks packages of one module.
type Loader = loader.Loader

// NewLoader returns a loader for the module identified by cfg, or an
// error when no go.mod can be found.
func NewLoader(cfg Config) (*Loader, error) { return loader.NewLoader(cfg) }

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) { return loader.FindModuleRoot(dir) }
