package typed

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analyzer"
)

// repoRoot walks up from the working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// loadFixture writes src as a single-file package in a temp dir and
// loads it with imports resolving against the real module.
func loadFixture(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(Config{ModuleRoot: repoRoot(t)})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

const header = `package fixture

import (
	"repro/internal/core"
	"repro/internal/graph"
)

var frontier interface{ Get(int) bool }
var _ = graph.VertexID(0)
var _ core.Mode
`

func TestResolvedTypeDiscrimination(t *testing.T) {
	// A local generic type also named DenseCtx: the syntactic pass
	// (shape match on the spelled type name) is fooled; the typed pass
	// resolves the package and rejects it.
	src := header + `
type DenseCtx[M any] struct{}

func impostor(ctx *DenseCtx[uint32], srcs []graph.VertexID) {
	for _, u := range srcs {
		if frontier.Get(int(u)) {
			break
		}
	}
}

func genuine(c *core.DenseCtx[uint32], others []graph.VertexID) {
	for _, u := range others {
		if frontier.Get(int(u)) {
			break
		}
	}
}
`
	syn, err := analyzer.Analyze("fixture.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	synNames := map[string]bool{}
	for _, f := range syn.Funcs {
		synNames[f.Name] = true
	}
	if !synNames["impostor"] {
		t.Fatalf("expected the syntactic pass to be fooled by the impostor; got %+v", syn.Funcs)
	}

	rep := AnalyzePackage(loadFixture(t, src))
	if len(rep.Funcs) != 1 || rep.Funcs[0].Name != "genuine" {
		t.Fatalf("typed pass funcs = %+v, want exactly [genuine]", rep.Funcs)
	}
	f := rep.Funcs[0]
	if !f.LoopCarried || f.Instrumented != InstrumentedNo {
		t.Fatalf("genuine: %+v", f)
	}
	if f.MsgType != "uint32" {
		t.Fatalf("msg type = %q, want uint32", f.MsgType)
	}
}

func TestAliasedContextAndNeighbors(t *testing.T) {
	// The context and the neighbor slice both flow through local
	// aliases. The syntactic pass sees no neighbor loop at all (the
	// range subject is ns, not srcs) and no EmitDep on ctx.
	src := header + `
func aliased(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	c := ctx
	ns := srcs
	for _, u := range ns {
		c.Edge()
		if frontier.Get(int(u)) {
			c.EmitDep()
			break
		}
	}
}
`
	syn, err := analyzer.Analyze("fixture.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(syn.Funcs) != 1 {
		t.Fatalf("syntactic funcs: %+v", syn.Funcs)
	}
	if len(syn.Funcs[0].Loops) != 0 {
		t.Fatalf("syntactic pass unexpectedly resolved the aliased loop: %+v", syn.Funcs[0])
	}

	rep := AnalyzePackage(loadFixture(t, src))
	if len(rep.Funcs) != 1 {
		t.Fatalf("typed funcs: %+v", rep.Funcs)
	}
	f := rep.Funcs[0]
	if len(f.Loops) != 1 || f.Loops[0].Breaks != 1 {
		t.Fatalf("aliased loop not found: %+v", f)
	}
	if !f.LoopCarried || f.Instrumented != InstrumentedYes {
		t.Fatalf("aliased EmitDep not recognized: %+v", f)
	}
}

// TestInterproceduralHelperBreak is the acceptance fixture: the UDF has
// no loop of its own — it hands the neighbor slice to a helper whose
// loop returns early. The syntactic pass reports no loop-carried
// dependency; the typed pass must.
func TestInterproceduralHelperBreak(t *testing.T) {
	src := header + `
func udf(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	if firstActive(srcs) >= 0 {
		ctx.Emit(uint32(dst))
	}
}

func firstActive(srcs []graph.VertexID) int {
	for i, u := range srcs {
		if frontier.Get(int(u)) {
			return i
		}
	}
	return -1
}
`
	syn, err := analyzer.Analyze("fixture.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(syn.Funcs) != 1 {
		t.Fatalf("syntactic funcs: %+v", syn.Funcs)
	}
	if syn.Funcs[0].LoopCarried {
		t.Fatalf("syntactic pass should not see the helper break (it analyzes one function at a time): %+v", syn.Funcs[0])
	}

	rep := AnalyzePackage(loadFixture(t, src))
	var udf *FuncReport
	for i := range rep.Funcs {
		if rep.Funcs[i].Name == "udf" {
			udf = &rep.Funcs[i]
		}
	}
	if udf == nil {
		t.Fatalf("typed funcs: %+v", rep.Funcs)
	}
	if !udf.LoopCarried {
		t.Fatalf("typed pass missed the interprocedural break: %+v", udf)
	}
	if len(udf.InterBreaks) == 0 || udf.InterBreaks[0].Callee != "firstActive" || udf.InterBreaks[0].Covered {
		t.Fatalf("inter breaks: %+v", udf.InterBreaks)
	}
	if udf.Instrumented != InstrumentedNo {
		t.Fatalf("instrumented = %s, want no", udf.Instrumented)
	}
}

func TestHelperChainAndCoverage(t *testing.T) {
	// Two-hop helper chain; the inner helper emits the dependency
	// itself before returning, so the exit is covered.
	src := header + `
func udf(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	scan(ctx, srcs)
}

func scan(ctx *core.DenseCtx[uint32], srcs []graph.VertexID) bool {
	return inner(ctx, srcs)
}

func inner(ctx *core.DenseCtx[uint32], srcs []graph.VertexID) bool {
	for _, u := range srcs {
		if frontier.Get(int(u)) {
			ctx.EmitDep()
			return true
		}
	}
	return false
}
`
	rep := AnalyzePackage(loadFixture(t, src))
	var udf *FuncReport
	for i := range rep.Funcs {
		if rep.Funcs[i].Name == "udf" {
			udf = &rep.Funcs[i]
		}
	}
	if udf == nil || !udf.LoopCarried {
		t.Fatalf("chain break missed: %+v", rep.Funcs)
	}
	for _, ib := range udf.InterBreaks {
		if !ib.Covered {
			t.Fatalf("covered helper reported uncovered: %+v", udf.InterBreaks)
		}
	}
	if udf.Instrumented != InstrumentedYes {
		t.Fatalf("instrumented = %s, want yes", udf.Instrumented)
	}
}

func TestCarriedVarAccessKinds(t *testing.T) {
	src := header + `
func kcoreish(ctx *core.DenseCtx[int64], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	var cnt int64
	var last graph.VertexID
	for _, u := range srcs {
		if frontier.Get(int(u)) {
			cnt++
			last = u
			if cnt >= 3 {
				ctx.EmitDep()
				break
			}
		}
	}
	ctx.Emit(cnt)
	_ = last
}
`
	rep := AnalyzePackage(loadFixture(t, src))
	if len(rep.Funcs) != 1 || len(rep.Funcs[0].Loops) != 1 {
		t.Fatalf("funcs: %+v", rep.Funcs)
	}
	got := map[string]CarriedVar{}
	for _, c := range rep.Funcs[0].Loops[0].Carried {
		got[c.Name] = c
	}
	if c := got["cnt"]; c.Access != "readwrite" || c.Type != "int64" {
		t.Fatalf("cnt = %+v", c)
	}
	if c := got["last"]; c.Access != "write" {
		t.Fatalf("last = %+v (want write-only)", c)
	}
}

func TestReturnInLoopIsEarlyExit(t *testing.T) {
	src := header + `
func early(ctx *core.DenseCtx[uint32], srcs []graph.VertexID) {
	for _, u := range srcs {
		if frontier.Get(int(u)) {
			return
		}
	}
}
`
	rep := AnalyzePackage(loadFixture(t, src))
	f := rep.Funcs[0]
	if !f.LoopCarried || f.Loops[0].Returns != 1 || f.Instrumented != InstrumentedNo {
		t.Fatalf("return-in-loop: %+v", f)
	}
}

func TestPartialInstrumentation(t *testing.T) {
	src := header + `
func partial(ctx *core.DenseCtx[uint32], srcs []graph.VertexID) {
	for _, u := range srcs {
		if u == 1 {
			ctx.EmitDep()
			break
		}
		if u == 2 {
			break
		}
	}
}
`
	rep := AnalyzePackage(loadFixture(t, src))
	f := rep.Funcs[0]
	if f.Instrumented != InstrumentedPartial {
		t.Fatalf("instrumented = %s, want partial (the Listing 2 failure class): %+v", f.Instrumented, f)
	}
	if len(f.Loops[0].UncoveredExits) != 1 {
		t.Fatalf("uncovered exits: %+v", f.Loops[0])
	}
}

// TestRealAlgorithmsPackage loads the repo's own UDFs: every signal
// function in internal/algorithms must analyze as fully instrumented —
// the framework's own kernels obey the invariant sgvet enforces.
func TestRealAlgorithmsPackage(t *testing.T) {
	loader, err := NewLoader(Config{ModuleRoot: repoRoot(t)})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(repoRoot(t), "internal", "algorithms"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors loading internal/algorithms: %v", pkg.TypeErrors)
	}
	rep := AnalyzePackage(pkg)
	if len(rep.Funcs) == 0 {
		t.Fatal("no signal UDFs found in internal/algorithms")
	}
	carried := 0
	for _, f := range rep.Funcs {
		if f.Instrumented == InstrumentedNo || f.Instrumented == InstrumentedPartial {
			t.Errorf("uninstrumented UDF in tree: %s (%s:%d) state=%s", f.Name, f.File, f.Line, f.Instrumented)
		}
		if f.LoopCarried {
			carried++
		}
	}
	if carried == 0 {
		t.Fatal("expected at least one loop-carried UDF (kcore, bfs, mis, sampling)")
	}
}

func TestLoadPatternsWildcard(t *testing.T) {
	loader, err := NewLoader(Config{ModuleRoot: repoRoot(t)})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("./internal/analyzer/...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	want := map[string]bool{
		"repro/internal/analyzer":       false,
		"repro/internal/analyzer/typed": false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Fatalf("pattern expansion missed %s (got %v)", p, paths)
		}
	}
}
