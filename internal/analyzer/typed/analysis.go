package typed

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analyzer"
)

// Instrumentation state of a signal UDF, the classification the
// syntactic pass cannot make precisely (it only greps for an EmitDep
// call anywhere in the function).
const (
	// InstrumentedNotNeeded — no neighbor-loop early exit, nothing to
	// instrument.
	InstrumentedNotNeeded = "not-needed"
	// InstrumentedYes — every neighbor-loop early exit is immediately
	// preceded by ctx.EmitDep().
	InstrumentedYes = "yes"
	// InstrumentedPartial — some early exits are covered, others not:
	// the paper Listing 2 manual-fix failure class.
	InstrumentedPartial = "partial"
	// InstrumentedNo — early exits exist and none is covered.
	InstrumentedNo = "no"
)

// CarriedVar is one loop-carried data-dependency candidate: a variable
// declared outside the neighbor loop and touched inside it — a
// DepMessage data member in the paper's terms.
type CarriedVar struct {
	Name string `json:"name"`
	// Type is the variable's resolved type.
	Type string `json:"type,omitempty"`
	// Access is "read", "write" or "readwrite". An accumulator the loop
	// both reads and updates (cnt++, sum += w) is "readwrite" — true
	// carried state; a write-only variable is a result slot.
	Access string `json:"access"`
}

// InterBreak is an interprocedural early exit: the UDF (or a helper)
// passes the neighbor slice to a callee whose loop over it exits early.
type InterBreak struct {
	// Callee is the helper's name.
	Callee string `json:"callee"`
	// CallLine is the call site's line in the caller.
	CallLine int `json:"call_line"`
	// ExitLine is the early exit's line inside the (possibly nested)
	// callee.
	ExitLine int `json:"exit_line"`
	// Depth is the call depth (1 = direct helper).
	Depth int `json:"depth"`
	// Covered reports that the helper emits the dependency itself
	// (ctx.EmitDep() immediately before the exit).
	Covered bool `json:"covered"`
}

// LoopReport describes one neighbor-traversal loop.
type LoopReport struct {
	Line int `json:"line"`
	// Breaks counts break statements bound to the loop.
	Breaks int `json:"breaks"`
	// Returns counts return statements inside the loop — early exits
	// the syntactic pass ignores entirely.
	Returns int `json:"returns,omitempty"`
	// LocalExits counts early exits annotated //sgc:local — intentional
	// machine-local breaks that are not loop-carried dependencies (e.g.
	// a re-walk of neighbors already fully scanned). They need no
	// EmitDep and are excluded from Breaks/Returns.
	LocalExits int `json:"local_exits,omitempty"`
	// UncoveredExits lists the lines of breaks/returns not immediately
	// preceded by ctx.EmitDep().
	UncoveredExits []int `json:"uncovered_exits,omitempty"`
	// Carried lists loop-carried data-dependency candidates.
	Carried []CarriedVar `json:"carried,omitempty"`
}

// FuncReport describes one signal UDF, resolved.
type FuncReport struct {
	Name string `json:"name"`
	File string `json:"file"`
	Line int    `json:"line"`
	// Path is the file's full path (excluded from JSON, which keeps the
	// stable base name in File).
	Path string `json:"-"`

	CtxParam      string `json:"ctx_param"`
	NeighborParam string `json:"neighbor_param"`
	// MsgType is the DenseCtx type argument (the update-message type M).
	MsgType string `json:"msg_type,omitempty"`

	Loops []LoopReport `json:"loops"`
	// InterBreaks lists early exits reached through helpers.
	InterBreaks []InterBreak `json:"inter_breaks,omitempty"`

	// LoopCarried reports whether any path — direct or through a
	// helper — exits neighbor traversal early.
	LoopCarried bool `json:"loop_carried"`
	// Instrumented is one of the Instrumented* constants.
	Instrumented string `json:"instrumented"`
}

// PackageReport is the analysis of one package.
type PackageReport struct {
	ImportPath string       `json:"import_path"`
	Dir        string       `json:"dir,omitempty"`
	Funcs      []FuncReport `json:"funcs"`
	TypeErrors []string     `json:"type_errors,omitempty"`
}

// LoopCarriedFuncs returns the names of UDFs needing dependency
// propagation.
func (r *PackageReport) LoopCarriedFuncs() []string {
	var out []string
	for _, f := range r.Funcs {
		if f.LoopCarried {
			out = append(out, f.Name)
		}
	}
	return out
}

// AnalyzePackage runs the type-resolved §4 analysis over one loaded
// package.
func AnalyzePackage(pkg *Package) *PackageReport {
	rep := &PackageReport{ImportPath: pkg.ImportPath, Dir: pkg.Dir}
	for _, err := range pkg.TypeErrors {
		rep.TypeErrors = append(rep.TypeErrors, err.Error())
	}
	a := &passState{
		pkg:        pkg,
		helperMemo: make(map[helperKey]helperResult),
		localLines: localExitLines(pkg.Fset, pkg.Files),
	}
	for i, file := range pkg.Files {
		filename := pkg.Filenames[i]
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				if fr, ok := a.analyzeFunc(fn.Name.Name, filename, fn.Type, fn.Body); ok {
					rep.Funcs = append(rep.Funcs, fr)
				}
			case *ast.FuncLit:
				if fr, ok := a.analyzeFunc("<anonymous>", filename, fn.Type, fn.Body); ok {
					rep.Funcs = append(rep.Funcs, fr)
				}
			}
			return true
		})
	}
	return rep
}

type passState struct {
	pkg        *Package
	helperMemo map[helperKey]helperResult
	// localLines marks, per filename, the lines carrying an //sgc:local
	// directive.
	localLines map[string]map[int]bool
}

// localExitLines collects //sgc:local directive lines per file. The
// directive marks an early exit as machine-local — intentionally not a
// loop-carried dependency — on its own line or the line above the exit.
func localExitLines(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				if !strings.HasPrefix(strings.TrimSpace(text), "sgc:local") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// isLocalExit reports whether the exit at pos carries the //sgc:local
// directive (same line or the line above).
func (a *passState) isLocalExit(pos token.Pos) bool {
	p := a.pkg.Fset.Position(pos)
	m := a.localLines[p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}

type helperKey struct {
	fn    types.Object
	param int
}

type helperResult struct {
	exits []InterBreak // exit/break lines found in the helper, depth-relative
}

// isDenseCtxPtr reports whether t is *core.DenseCtx[M], returning M.
func isDenseCtxPtr(t types.Type) (msg types.Type, ok bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return nil, false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Name() != "DenseCtx" || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/core") {
		return nil, false
	}
	if args := named.TypeArgs(); args != nil && args.Len() == 1 {
		return args.At(0), true
	}
	return nil, true
}

// isVertexSlice reports whether t is []graph.VertexID.
func isVertexSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "VertexID" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/graph")
}

// paramObjects returns the declared objects of a function's parameters
// matching the two signal-UDF roles, resolved by type.
func (a *passState) paramObjects(typ *ast.FuncType) (ctx, nbr *types.Var, msg types.Type) {
	if typ.Params == nil {
		return nil, nil, nil
	}
	for _, field := range typ.Params.List {
		for _, name := range field.Names {
			obj, ok := a.pkg.Info.Defs[name].(*types.Var)
			if !ok || obj == nil {
				continue
			}
			if m, ok := isDenseCtxPtr(obj.Type()); ok && ctx == nil {
				ctx, msg = obj, m
			} else if isVertexSlice(obj.Type()) && nbr == nil {
				nbr = obj
			}
		}
	}
	return ctx, nbr, msg
}

func (a *passState) analyzeFunc(name, filename string, typ *ast.FuncType, body *ast.BlockStmt) (FuncReport, bool) {
	ctxObj, nbrObj, msgType := a.paramObjects(typ)
	if ctxObj == nil || nbrObj == nil {
		return FuncReport{}, false
	}
	fset := a.pkg.Fset
	fr := FuncReport{
		Name:          name,
		File:          filepath.Base(filename),
		Path:          filename,
		Line:          fset.Position(typ.Pos()).Line,
		CtxParam:      ctxObj.Name(),
		NeighborParam: nbrObj.Name(),
	}
	if msgType != nil {
		fr.MsgType = types.TypeString(msgType, func(p *types.Package) string { return p.Name() })
	}

	ctxAliases := a.aliasSet(body, ctxObj)
	nbrAliases := a.aliasSet(body, nbrObj)

	covered := 0
	uncovered := 0
	for _, loop := range a.neighborLoops(body, nbrAliases) {
		lr := LoopReport{Line: fset.Position(loop.Pos()).Line}
		exits := a.loopExits(loop)
		carriedExits := 0
		for _, ex := range exits {
			if a.isLocalExit(ex.stmt.Pos()) {
				lr.LocalExits++
				continue
			}
			carriedExits++
			if ex.isReturn {
				lr.Returns++
			} else {
				lr.Breaks++
			}
			if a.exitCovered(loop.body(), ex.stmt, ctxAliases) {
				covered++
			} else {
				uncovered++
				lr.UncoveredExits = append(lr.UncoveredExits, fset.Position(ex.stmt.Pos()).Line)
			}
		}
		lr.Carried = a.carriedVars(loop, body)
		fr.Loops = append(fr.Loops, lr)
		if carriedExits > 0 {
			fr.LoopCarried = true
		}
	}

	// Interprocedural pass: calls that hand the neighbor slice to a
	// helper whose traversal exits early.
	fr.InterBreaks = a.interBreaks(body, nbrAliases, 1)
	for _, ib := range fr.InterBreaks {
		fr.LoopCarried = true
		if ib.Covered {
			covered++
		} else {
			uncovered++
		}
	}

	switch {
	case !fr.LoopCarried:
		fr.Instrumented = InstrumentedNotNeeded
	case uncovered == 0:
		fr.Instrumented = InstrumentedYes
	case covered > 0:
		fr.Instrumented = InstrumentedPartial
	default:
		fr.Instrumented = InstrumentedNo
	}
	return fr, true
}

// aliasSet computes the set of objects that alias root within body:
// root itself plus variables assigned from an alias (c := ctx,
// ns := srcs, ns2 := ns[1:]). Iterates to a fixed point so chains and
// out-of-order closures resolve.
func (a *passState) aliasSet(body *ast.BlockStmt, root *types.Var) map[types.Object]bool {
	set := map[types.Object]bool{root: true}
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !a.exprAliases(rhs, set) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := a.pkg.Info.Defs[id]
				if obj == nil {
					obj = a.pkg.Info.Uses[id]
				}
				if obj != nil && !set[obj] {
					set[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return set
		}
	}
}

// exprAliases reports whether e evaluates to (a sub-slice of) an object
// in set.
func (a *passState) exprAliases(e ast.Expr, set map[types.Object]bool) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return set[a.pkg.Info.Uses[x]]
	case *ast.ParenExpr:
		return a.exprAliases(x.X, set)
	case *ast.SliceExpr:
		return a.exprAliases(x.X, set)
	}
	return false
}

// neighborLoop mirrors the syntactic pass's loop wrapper.
type neighborLoop struct {
	rng *ast.RangeStmt
	fr  *ast.ForStmt
}

func (nl neighborLoop) Pos() token.Pos {
	if nl.rng != nil {
		return nl.rng.Pos()
	}
	return nl.fr.Pos()
}

func (nl neighborLoop) body() *ast.BlockStmt {
	if nl.rng != nil {
		return nl.rng.Body
	}
	return nl.fr.Body
}

// neighborLoops finds loops traversing any alias of the neighbor slice:
// range loops over it and index loops bounded by its length.
func (a *passState) neighborLoops(body *ast.BlockStmt, nbrAliases map[types.Object]bool) []neighborLoop {
	var loops []neighborLoop
	ast.Inspect(body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.RangeStmt:
			if a.exprAliases(l.X, nbrAliases) {
				loops = append(loops, neighborLoop{rng: l})
			}
		case *ast.ForStmt:
			if a.forBoundsOnLen(l, nbrAliases) {
				loops = append(loops, neighborLoop{fr: l})
			}
		}
		return true
	})
	return loops
}

func (a *passState) forBoundsOnLen(l *ast.ForStmt, nbrAliases map[types.Object]bool) bool {
	bin, ok := l.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	isLen := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "len" {
			return false
		}
		// Resolved check: the len must be the builtin, not a shadow.
		if _, isBuiltin := a.pkg.Info.Uses[fn].(*types.Builtin); !isBuiltin {
			return false
		}
		return a.exprAliases(call.Args[0], nbrAliases)
	}
	return isLen(bin.X) || isLen(bin.Y)
}

// loopExit is a statement that terminates neighbor traversal early: a
// break bound to the loop, or a return inside it.
type loopExit struct {
	stmt     ast.Stmt
	isReturn bool
}

// loopExits collects the loop's early exits. Break binding reuses the
// syntactic pass's walker (analyzer.BoundBreaks) so the two passes agree
// on Go's binding rules; returns are collected here, skipping nested
// function literals.
func (a *passState) loopExits(loop neighborLoop) []loopExit {
	var exits []loopExit
	for _, br := range analyzer.BoundBreaks(loop.body()) {
		exits = append(exits, loopExit{stmt: br})
	}
	ast.Inspect(loop.body(), func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exits = append(exits, loopExit{stmt: s, isReturn: true})
		}
		return true
	})
	sort.Slice(exits, func(i, j int) bool { return exits[i].stmt.Pos() < exits[j].stmt.Pos() })
	return exits
}

// exitCovered reports whether the statement immediately preceding exit
// in its innermost statement list is ctx.EmitDep() on a context alias —
// the exact shape the instrumenter emits.
func (a *passState) exitCovered(body *ast.BlockStmt, exit ast.Stmt, ctxAliases map[types.Object]bool) bool {
	covered := false
	var scan func(list []ast.Stmt)
	scan = func(list []ast.Stmt) {
		for i, st := range list {
			if st == exit {
				if i > 0 && a.isEmitDep(list[i-1], ctxAliases) {
					covered = true
				}
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			scan(s.List)
		case *ast.CaseClause:
			scan(s.Body)
		case *ast.CommClause:
			scan(s.Body)
		}
		return true
	})
	return covered
}

// isEmitDep reports whether st is `c.EmitDep()` for a context alias c.
func (a *passState) isEmitDep(st ast.Stmt, ctxAliases map[types.Object]bool) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "EmitDep" {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		return ctxAliases[a.pkg.Info.Uses[id]]
	}
	return false
}

// containsEmitDepBefore reports whether the statement immediately before
// exit inside callee calls EmitDep on any DenseCtx-typed value — helper
// coverage, where the helper carries its own ctx parameter.
func (a *passState) containsEmitDepBefore(callee *ast.FuncDecl, exit ast.Stmt) bool {
	if callee.Body == nil {
		return false
	}
	// A helper covers its own exit when the immediately preceding
	// statement calls EmitDep on something DenseCtx-typed.
	covered := false
	var scan func(list []ast.Stmt)
	scan = func(list []ast.Stmt) {
		for i, st := range list {
			if st == exit {
				if i > 0 {
					if es, ok := list[i-1].(*ast.ExprStmt); ok {
						if call, ok := es.X.(*ast.CallExpr); ok {
							if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "EmitDep" {
								if tv, ok := a.pkg.Info.Types[sel.X]; ok {
									if _, isCtx := isDenseCtxPtr(tv.Type); isCtx {
										covered = true
									}
								}
							}
						}
					}
				}
				return
			}
		}
	}
	ast.Inspect(callee.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			scan(s.List)
		case *ast.CaseClause:
			scan(s.Body)
		case *ast.CommClause:
			scan(s.Body)
		}
		return true
	})
	return covered
}

const maxHelperDepth = 4

// interBreaks finds calls inside body that pass a neighbor-slice alias
// to a package-local function whose loop over that parameter exits
// early. depth guards recursion through helper chains.
func (a *passState) interBreaks(body ast.Node, nbrAliases map[types.Object]bool, depth int) []InterBreak {
	if depth > maxHelperDepth {
		return nil
	}
	var out []InterBreak
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for argIdx, arg := range call.Args {
			if !a.exprAliases(arg, nbrAliases) {
				continue
			}
			decl, obj := a.calleeDecl(call.Fun)
			if decl == nil {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Params().Len() <= argIdx || sig.Variadic() && argIdx >= sig.Params().Len()-1 {
				continue
			}
			for _, ib := range a.helperExits(decl, obj, argIdx, depth) {
				ib.CallLine = a.pkg.Fset.Position(call.Pos()).Line
				out = append(out, ib)
			}
		}
		return true
	})
	return out
}

// calleeDecl resolves a call target to its FuncDecl within the loaded
// package, or nil for methods, imported functions and builtins.
func (a *passState) calleeDecl(fun ast.Expr) (*ast.FuncDecl, types.Object) {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj := a.pkg.Info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != a.pkg.Types {
		return nil, nil
	}
	for _, file := range a.pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if a.pkg.Info.Defs[fd.Name] == obj {
				return fd, obj
			}
		}
	}
	return nil, nil
}

// helperExits analyzes helper fn: does its loop over parameter paramIdx
// exit early? Memoized; recurses one level per helper hop.
func (a *passState) helperExits(decl *ast.FuncDecl, obj types.Object, paramIdx int, depth int) []InterBreak {
	key := helperKey{fn: obj, param: paramIdx}
	if res, ok := a.helperMemo[key]; ok {
		return res.exits
	}
	// Mark in-progress to cut recursion cycles.
	a.helperMemo[key] = helperResult{}

	var exits []InterBreak
	if decl.Body != nil && decl.Type.Params != nil {
		// Find the parameter object at paramIdx.
		var paramObj *types.Var
		idx := 0
		for _, field := range decl.Type.Params.List {
			names := field.Names
			if len(names) == 0 {
				idx++
				continue
			}
			for _, name := range names {
				if idx == paramIdx {
					paramObj, _ = a.pkg.Info.Defs[name].(*types.Var)
				}
				idx++
			}
		}
		if paramObj != nil && isVertexSlice(paramObj.Type()) {
			aliases := a.aliasSet(decl.Body, paramObj)
			fset := a.pkg.Fset
			for _, loop := range a.neighborLoops(decl.Body, aliases) {
				for _, ex := range a.loopExits(loop) {
					if a.isLocalExit(ex.stmt.Pos()) {
						continue
					}
					exits = append(exits, InterBreak{
						Callee:   decl.Name.Name,
						ExitLine: fset.Position(ex.stmt.Pos()).Line,
						Depth:    depth,
						Covered:  a.containsEmitDepBefore(decl, ex.stmt),
					})
				}
			}
			// Helper chains: the helper may itself hand the slice on.
			for _, ib := range a.interBreaks(decl.Body, aliases, depth+1) {
				ib.Callee = decl.Name.Name + ">" + ib.Callee
				ib.Depth = depth + 1
				exits = append(exits, ib)
			}
		}
	}
	a.helperMemo[key] = helperResult{exits: exits}
	return exits
}

// carriedVars lists variables declared in the function outside the loop
// and touched inside it, with resolved types and read/write access.
func (a *passState) carriedVars(loop neighborLoop, body *ast.BlockStmt) []CarriedVar {
	info := a.pkg.Info
	loopBody := loop.body()

	inLoop := func(obj types.Object) bool {
		return obj.Pos() >= loop.Pos() && obj.Pos() <= loopBody.End()
	}
	inFunc := func(obj types.Object) bool {
		return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
	}

	type access struct{ read, write bool }
	accesses := map[*types.Var]*access{}
	var order []*types.Var
	touch := func(obj types.Object, write bool) {
		v, ok := obj.(*types.Var)
		if !ok || v == nil || inLoop(v) || !inFunc(v) || v.Name() == "_" {
			return
		}
		acc, ok := accesses[v]
		if !ok {
			acc = &access{}
			accesses[v] = acc
			order = append(order, v)
		}
		if write {
			acc.write = true
		} else {
			acc.read = true
		}
	}

	ast.Inspect(loopBody, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						touch(obj, true)
						if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
							touch(obj, false) // compound assignment reads too
						}
					}
				}
			}
			for _, rhs := range s.Rhs {
				a.touchReads(rhs, touch)
			}
			return false
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					touch(obj, true)
					touch(obj, false)
				}
			}
			return false
		case *ast.Ident:
			if obj := info.Uses[s]; obj != nil {
				touch(obj, false)
			}
		}
		return true
	})

	var out []CarriedVar
	for _, v := range order {
		acc := accesses[v]
		if !acc.write {
			continue // read-only outer state is not carried, just captured
		}
		kind := "write"
		if acc.read {
			kind = "readwrite"
		}
		out = append(out, CarriedVar{
			Name:   v.Name(),
			Type:   types.TypeString(v.Type(), func(p *types.Package) string { return p.Name() }),
			Access: kind,
		})
	}
	return out
}

func (a *passState) touchReads(e ast.Expr, touch func(types.Object, bool)) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := a.pkg.Info.Uses[id]; obj != nil {
				touch(obj, false)
			}
		}
		return true
	})
}

// String renders the package report in the tool's human format,
// extending the syntactic format with resolution detail.
func (r *PackageReport) String() string {
	var b strings.Builder
	for _, f := range r.Funcs {
		fmt.Fprintf(&b, "func %s (%s:%d): ctx=%s neighbors=%s", f.Name, f.File, f.Line, f.CtxParam, f.NeighborParam)
		if f.MsgType != "" {
			fmt.Fprintf(&b, " msg=%s", f.MsgType)
		}
		fmt.Fprintf(&b, " [instrumented=%s]\n", f.Instrumented)
		for _, l := range f.Loops {
			fmt.Fprintf(&b, "  loop at line %d: breaks=%d", l.Line, l.Breaks)
			if l.Returns > 0 {
				fmt.Fprintf(&b, " returns=%d", l.Returns)
			}
			if len(l.Carried) > 0 {
				names := make([]string, len(l.Carried))
				for i, c := range l.Carried {
					names[i] = fmt.Sprintf("%s(%s %s)", c.Name, c.Type, c.Access)
				}
				fmt.Fprintf(&b, " carried=%v", names)
			}
			b.WriteString("\n")
		}
		for _, ib := range f.InterBreaks {
			fmt.Fprintf(&b, "  helper exit via %s (call line %d, exit line %d, depth %d, covered=%v)\n",
				ib.Callee, ib.CallLine, ib.ExitLine, ib.Depth, ib.Covered)
		}
		if f.LoopCarried {
			b.WriteString("  => loop-carried dependency\n")
		} else {
			b.WriteString("  => no loop-carried dependency\n")
		}
	}
	return b.String()
}
