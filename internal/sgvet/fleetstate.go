package sgvet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FleetState polices the fleet health-state machine (PR 7): worker
// health travels as the typed server.WorkerState enum, with String()
// existing only for logs and the /statusz JSON rendering. Branching on
// the rendered string — `w.State.String() == "dead"` or comparing a
// state-name literal against some stringly-typed status field —
// re-derives the enum from its display form: it breaks silently when a
// state is renamed or added (the comparison just goes false forever)
// and the compiler can't check exhaustiveness. Compare WorkerState
// values directly (state == server.StateDead).
//
// Rules:
//
//  1. ==/!= where an operand is a WorkerState's String() call → compare
//     the typed enum.
//  2. switch over a WorkerState's String() → switch over the enum.
//  3. ==/!= between a state-name literal ("healthy", "suspect", "dead",
//     "rejoining") and a non-constant string expression that names a
//     state/health/status variable → carry the typed enum instead of a
//     raw string.
var FleetState = &Analyzer{
	Name: "fleetstate",
	Doc:  "fleet health states compared as raw strings instead of the typed enum",
	Run:  runFleetState,
}

func runFleetState(p *Pass) {
	p.inspectFiles(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BinaryExpr:
			fleetStateCompare(p, s)
		case *ast.SwitchStmt:
			if s.Tag != nil && workerStateString(p, s.Tag) {
				p.Reportf(s.Tag.Pos(), "switch over WorkerState.String(): switch over the typed enum so renames and new states fail the build, not the branch")
			}
		}
		return true
	})
}

func fleetStateCompare(p *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if workerStateString(p, be.X) || workerStateString(p, be.Y) {
		p.Reportf(be.OpPos, "WorkerState compared via String() with %s: compare the typed enum (state %s server.StateHealthy et al.)", be.Op, be.Op)
		return
	}
	if lit, other, ok := stateNameLiteral(p, be.X, be.Y); ok && mentionsStateIdent(other) {
		p.Reportf(be.OpPos, "health state compared as raw string %q: carry the typed server.WorkerState and compare enum values", lit)
	}
}

// workerStateString reports whether e is a String() call on a value of
// the server package's WorkerState type.
func workerStateString(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "String" {
		return false
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isWorkerState(sig.Recv().Type())
}

func isWorkerState(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "WorkerState" &&
		obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/server")
}

// stateNameVocab is the rendered state vocabulary; keep in sync with
// WorkerState.String.
var stateNameVocab = map[string]bool{
	"healthy": true, "suspect": true, "dead": true, "rejoining": true,
}

// stateNameLiteral matches one operand being a constant state-name
// string and returns it with the opposing non-constant operand.
func stateNameLiteral(p *Pass, x, y ast.Expr) (string, ast.Expr, bool) {
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		tv, ok := p.Pkg.Info.Types[pair[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			continue
		}
		if !stateNameVocab[constant.StringVal(tv.Value)] {
			continue
		}
		if otv, ok := p.Pkg.Info.Types[pair[1]]; ok && otv.Value == nil && isStringType(otv.Type) {
			return constant.StringVal(tv.Value), pair[1], true
		}
	}
	return "", nil, false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// mentionsStateIdent reports whether the expression names something
// that is plausibly a health state — an identifier or selector whose
// name contains state/health/status. This keeps the literal rule from
// firing on unrelated string comparisons that merely collide with the
// vocabulary (a graph named "dead", say).
func mentionsStateIdent(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		name := strings.ToLower(id.Name)
		for _, hint := range []string{"state", "health", "status"} {
			if strings.Contains(name, hint) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
