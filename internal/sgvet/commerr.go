package sgvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CommErr polices the comm/engine error taxonomy (PR 3): transport and
// engine failures travel as wrapped typed errors (*comm.TimeoutError,
// *comm.CrashError, *core.StallError, ...), so classification must use
// errors.As / errors.Is — pointer identity (==) is never true for a
// wrapped error, which silently turns a "recoverable, restart the
// superstep" decision into a fatal abort. Likewise, a discarded error
// from a comm or engine call drops a crash report on the floor and the
// recovery loop never fires.
//
// Rules:
//
//  1. ==/!= where one operand is a pointer to a taxonomy error type
//     (a *...Error from repro/internal/comm or repro/internal/core)
//     → use errors.As.
//  2. ==/!= between two error-typed operands, neither nil → use
//     errors.Is (sentinels like http.ErrServerClosed arrive wrapped).
//  3. An error result from a repro/internal/comm or repro/internal/core
//     call discarded via a bare call statement or a blank identifier.
//     Close in a defer is conventionally fire-and-forget and exempt.
var CommErr = &Analyzer{
	Name: "commerr",
	Doc:  "comm/engine taxonomy errors compared by identity or discarded",
	Run:  runCommErr,
}

func runCommErr(p *Pass) {
	for _, f := range p.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch s := n.(type) {
			case *ast.BinaryExpr:
				commErrCompare(p, s)
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					commErrDiscard(p, call, parentOf(stack))
				}
			case *ast.AssignStmt:
				commErrBlankAssign(p, s)
			}
			return true
		})
	}
}

// parentOf returns the statement enclosing the node on top of the
// stack (stack[len-1] is the current node).
func parentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

func commErrCompare(p *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	info := p.Pkg.Info
	xt, xok := info.Types[be.X]
	yt, yok := info.Types[be.Y]
	if !xok || !yok {
		return
	}
	if xt.IsNil() || yt.IsNil() {
		return // err != nil is the one identity check that's correct
	}
	if taxonomyErrorPtr(xt.Type) || taxonomyErrorPtr(yt.Type) {
		p.Reportf(be.OpPos, "taxonomy error compared with %s: wrapped errors never match by identity — use errors.As", be.Op)
		return
	}
	if isErrorInterface(xt.Type) && isErrorInterface(yt.Type) {
		p.Reportf(be.OpPos, "error compared with %s: sentinel may arrive wrapped — use errors.Is", be.Op)
	}
}

// taxonomyErrorPtr reports whether t is *T for a named T ending in
// "Error" declared in the module's comm or core package.
func taxonomyErrorPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || !strings.HasSuffix(obj.Name(), "Error") {
		return false
	}
	return taxonomyPkg(obj.Pkg().Path())
}

func taxonomyPkg(path string) bool {
	return strings.HasSuffix(path, "internal/comm") || strings.HasSuffix(path, "internal/core")
}

func isErrorInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}

// commErrDiscard flags a bare call statement that throws away an error
// returned by a comm/core function.
func commErrDiscard(p *Pass, call *ast.CallExpr, parent ast.Node) {
	fn, last := taxonomyCallee(p, call)
	if fn == nil || !isErrorInterface(last) {
		return
	}
	if fn.Name() == "Close" {
		return // fire-and-forget Close is conventional
	}
	if _, isDefer := parent.(*ast.DeferStmt); isDefer {
		return
	}
	p.Reportf(call.Pos(), "error from %s discarded: a dropped comm/engine failure never reaches the recovery loop — handle it or assign and classify with errors.As", fn.Name())
}

// commErrBlankAssign flags `_ = call()` / `x, _ := call()` where the
// blank slot is the error result of a comm/core call.
func commErrBlankAssign(p *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, last := taxonomyCallee(p, call)
	if fn == nil || !isErrorInterface(last) || fn.Name() == "Close" {
		return
	}
	// The error is the final result; the final LHS must not be blank.
	lastLHS := as.Lhs[len(as.Lhs)-1]
	if id, ok := lastLHS.(*ast.Ident); ok && id.Name == "_" {
		p.Reportf(as.Pos(), "error from %s assigned to _: a dropped comm/engine failure never reaches the recovery loop — handle it or classify with errors.As", fn.Name())
	}
}

// taxonomyCallee resolves a call to a function or method declared in
// the module's comm or core package and returns it plus the type of
// its final result (types.Typ[types.Invalid] when none).
func taxonomyCallee(p *Pass, call *ast.CallExpr) (*types.Func, types.Type) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, nil
	}
	fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !taxonomyPkg(fn.Pkg().Path()) {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil, nil
	}
	return fn, sig.Results().At(sig.Results().Len() - 1).Type()
}
