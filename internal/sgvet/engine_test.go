package sgvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// ---------------------------------------------------------------------------
// bufown on the engine: flow-sensitive and interprocedural cases the
// historical block-scoped checker could not see. The acceptance bar for
// the engine rewrite is the first two fixtures: a use-after-Release
// flowing through an if/else merge, and one flowing through an
// in-package helper call.
// ---------------------------------------------------------------------------

const bufownFlowFixture = `package fixture

import "repro/internal/comm"

var ep comm.Endpoint

// Release on one branch poisons the merge point: some path through the
// return has handed the payload back.
func branchMergeRelease(cond bool) byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	if cond {
		m.Release()
	}
	return m.Payload[0] // want:bufown
}

// Same shape for a SendBufs hand-off inside a branch.
func branchMergeSend(cond bool, buf []byte) int {
	if cond {
		ep.SendBufs(1, comm.KindUpdate, 1, comm.Buffers{buf})
	}
	return len(buf) // want:bufown
}

// Release in one switch case reaches the shared follow block.
func switchMergeRelease(k int) byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	switch k {
	case 0:
		m.Release()
	case 1:
	}
	return m.Payload[0] // want:bufown
}

// Loop-carried: the use is clean on iteration one, but the back edge
// carries the Release to iteration two.
func loopCarriedRelease(n int) byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	var b byte
	for i := 0; i < n; i++ {
		b += m.Payload[0] // want:bufown
		m.Release()
	}
	return b
}

// Clean counterparts of the three shapes above: releasing on every
// path before any use, re-receiving on the releasing branch, and
// re-binding at the top of each iteration.
func okBothBranchesFresh(cond bool) byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	if cond {
		m.Release()
		m, _ = ep.Recv(0, comm.KindUpdate, 2)
	}
	return m.Payload[0]
}

func okFreshEachIteration(n int) byte {
	var b byte
	for i := 0; i < n; i++ {
		m, _ := ep.Recv(0, comm.KindUpdate, 1)
		b += m.Payload[0]
		m.Release()
	}
	return b
}

func okRangeRebind(msgs []comm.Message) byte {
	var b byte
	for _, m := range msgs {
		b += m.Payload[0]
		m.Release()
	}
	return b
}

func okDeferredRelease() byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	defer m.Release()
	return m.Payload[0]
}

// --- interprocedural: the hand-off happens inside a helper ---

func drain(m *comm.Message) {
	m.Release()
}

func drainTwice(m *comm.Message) {
	drain(m)
}

func drainDeferred(m *comm.Message) {
	defer m.Release()
}

func peek(m *comm.Message) byte {
	return m.Payload[0]
}

func payloadOf(m *comm.Message) []byte {
	return m.Payload
}

type sink struct{}

func (s *sink) drainMsg(m *comm.Message) {
	m.Release()
}

func helperRelease() byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	drain(&m)
	return m.Payload[0] // want:bufown
}

func helperTransitiveRelease() byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	drainTwice(&m)
	return m.Payload[0] // want:bufown
}

func helperDeferRelease() byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	drainDeferred(&m)
	return m.Payload[0] // want:bufown
}

func helperMethodRelease(s *sink) byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	s.drainMsg(&m)
	return m.Payload[0] // want:bufown
}

func helperAliasThenRelease() byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	p := payloadOf(&m)
	m.Release()
	return p[0] // want:bufown
}

func okHelperOnlyReads() byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	b := peek(&m)
	b += m.Payload[0]
	m.Release()
	return b
}

func okHelperReleaseInBranchNotTaken(cond bool) byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	if cond {
		drain(&m)
		return 0
	}
	b := m.Payload[0]
	m.Release()
	return b
}
`

func TestBufOwnFlowFixture(t *testing.T) {
	checkFixture(t, bufownFlowFixture, "", BufOwn)
}

// ---------------------------------------------------------------------------
// lockorder
// ---------------------------------------------------------------------------

const lockOrderFixture = `package fixture

import (
	"sync"

	"repro/internal/comm"
)

var ep comm.Endpoint

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	ch  = make(chan int, 1)
)

// lockAB + lockBA acquire the pair in opposite orders: a two-lock
// cycle, reported once per direction at the inner acquire site.
func lockAB() {
	muA.Lock()
	muB.Lock() // want:lockorder
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock() // want:lockorder
	muA.Unlock()
	muB.Unlock()
}

// The same inversion with one direction hidden inside a helper: the
// call site inherits the helper's summarized acquisition.
func lockD() {
	muD.Lock()
	muD.Unlock()
}

func helperCD() {
	muC.Lock()
	lockD() // want:lockorder
	muC.Unlock()
}

func lockDC() {
	muD.Lock()
	muC.Lock() // want:lockorder
	muC.Unlock()
	muD.Unlock()
}

type box struct{ mu sync.Mutex }

// Go mutexes are not reentrant: a must-held re-acquire deadlocks.
func (b *box) double() {
	b.mu.Lock()
	b.mu.Lock() // want:lockorder
	b.mu.Unlock()
}

func (b *box) lockIt() {
	b.mu.Lock()
}

func (b *box) helperSelfDeadlock() {
	b.mu.Lock()
	b.lockIt() // want:lockorder
	b.mu.Unlock()
}

// Parking while holding: channel ops, no-default selects, blocking
// comm calls — directly or through a helper.
func (b *box) sendWhileHeld() {
	b.mu.Lock()
	ch <- 1 // want:lockorder
	b.mu.Unlock()
}

func (b *box) deferHeldRecv() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-ch // want:lockorder
}

func (b *box) selectHeld() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want:lockorder
	case v := <-ch:
		return v
	}
}

func (b *box) commHeld() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return ep.Send(1, comm.KindUpdate, 1, nil) // want:lockorder
}

func waitCh() int {
	return <-ch
}

func (b *box) helperBlocked() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return waitCh() // want:lockorder
}

// Clean shapes: release before parking, default-armed select, a
// conditional unlock that covers every path, and a spawned goroutine
// whose blocking is its own flow.
func (b *box) okSendAfterUnlock() {
	b.mu.Lock()
	b.mu.Unlock()
	ch <- 1
}

func (b *box) okSelectDefault() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func (b *box) okConditionalUnlock(c bool) {
	b.mu.Lock()
	if c {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
}

func (b *box) okSpawnWhileHeld() {
	b.mu.Lock()
	go waitCh()
	b.mu.Unlock()
}

func okNestedConsistent() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}
`

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, lockOrderFixture, "", LockOrder)
}

// ---------------------------------------------------------------------------
// leakgo
// ---------------------------------------------------------------------------

const leakGoFixture = `package fixture

func forever() {
	for {
	}
}

func drainAll(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func spin(stop chan struct{}, work chan int) {
	// break exits the select, not the for: the loop never ends.
	go func() { // want:leakgo
		for {
			select {
			case <-stop:
				break
			case w := <-work:
				_ = w
			}
		}
	}()

	// return actually leaves the loop.
	go func() {
		for {
			select {
			case <-stop:
				return
			case w := <-work:
				_ = w
			}
		}
	}()

	// A labeled break does too.
	go func() {
	loop:
		for {
			select {
			case <-stop:
				break loop
			case w := <-work:
				_ = w
			}
		}
	}()

	// Named in-package callee with an unconditional infinite loop.
	go forever() // want:leakgo

	// Range over a channel exits when the channel closes.
	go drainAll(work)

	// A conditioned loop can exit.
	go func() {
		for len(work) > 0 {
			<-work
		}
	}()

	// A goroutine that can only end by panicking still ends.
	go func() {
		for {
			if len(work) > 10 {
				panic("overflow")
			}
			<-work
		}
	}()
}
`

func TestLeakGoFixture(t *testing.T) {
	checkFixture(t, leakGoFixture, "", LeakGo)
}

// ---------------------------------------------------------------------------
// CFG builder: structural unit tests + the invariants the fuzz target
// asserts on arbitrary parseable input.
// ---------------------------------------------------------------------------

// funcCFGs parses src and builds a CFG for every function declaration
// and literal, keyed by declaration name (literals get the enclosing
// declaration's name plus a counter).
func funcCFGs(t testing.TB, src string) map[string]*CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := map[string]*CFG{}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		out[fd.Name.Name] = FuncCFG(fd)
		lits := 0
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lits++
				out[fmt_lit(fd.Name.Name, lits)] = FuncCFG(lit)
			}
			return true
		})
	}
	return out
}

func fmt_lit(name string, i int) string { return name + "$" + string(rune('0'+i)) }

// checkCFGInvariants asserts the properties every built CFG must have,
// on any input: dense indices matching slice positions, edge lists
// closed over the surviving blocks, symmetric succ/pred edges, and
// every block reachable from the entry (prune's postcondition).
func checkCFGInvariants(t testing.TB, name string, g *CFG) {
	t.Helper()
	if g == nil || g.Entry == nil || g.Exit == nil {
		t.Fatalf("%s: nil CFG or entry/exit", name)
	}
	inGraph := map[*Block]bool{}
	for i, blk := range g.Blocks {
		if blk.Index != i {
			t.Fatalf("%s: block at position %d has Index %d", name, i, blk.Index)
		}
		inGraph[blk] = true
	}
	if !inGraph[g.Entry] {
		t.Fatalf("%s: entry not in Blocks", name)
	}
	if g.ExitReachable() != inGraph[g.Exit] {
		t.Fatalf("%s: ExitReachable=%v but exit-in-Blocks=%v", name, g.ExitReachable(), inGraph[g.Exit])
	}
	count := func(list []*Block, b *Block) int {
		n := 0
		for _, x := range list {
			if x == b {
				n++
			}
		}
		return n
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if !inGraph[s] {
				t.Fatalf("%s: block %d has pruned successor", name, blk.Index)
			}
			if count(blk.Succs, s) != count(s.Preds, blk) {
				t.Fatalf("%s: asymmetric edge %d->%d", name, blk.Index, s.Index)
			}
		}
		for _, p := range blk.Preds {
			if !inGraph[p] {
				t.Fatalf("%s: block %d has pruned predecessor", name, blk.Index)
			}
			if count(p.Succs, blk) != count(blk.Preds, p) {
				t.Fatalf("%s: asymmetric edge %d<-%d", name, blk.Index, p.Index)
			}
		}
	}
	// Reachability: prune guarantees every surviving block is reachable
	// from the entry.
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	if len(seen) != len(g.Blocks) {
		t.Fatalf("%s: %d of %d blocks unreachable from entry", name, len(g.Blocks)-len(seen), len(g.Blocks))
	}
}

const cfgShapesSrc = `package p

func straight() { x := 1; _ = x }

func infinite() {
	for {
	}
}

func condLoop(n int) {
	for i := 0; i < n; i++ {
	}
}

func breakOut() {
	for {
		break
	}
}

func selectBreak(stop chan int) {
	for {
		select {
		case <-stop:
			break
		}
	}
}

func selectReturn(stop chan int) {
	for {
		select {
		case <-stop:
			return
		}
	}
}

func labeledBreak(stop chan int) {
loop:
	for {
		select {
		case <-stop:
			break loop
		}
	}
}

func gotoBack(n int) {
again:
	n--
	if n > 0 {
		goto again
	}
}

func deadAfterReturn() int {
	return 1
	x := 2 // unreachable; pruned
	_ = x
}

func panicOnly() {
	panic("x")
}

func deferred(f func()) {
	defer f()
	defer f()
}

func switches(k int) int {
	switch k {
	case 0:
		return 0
	case 1:
		fallthrough
	default:
		k++
	}
	return k
}
`

func TestCFGShapes(t *testing.T) {
	cfgs := funcCFGs(t, cfgShapesSrc)
	for name, g := range cfgs {
		checkCFGInvariants(t, name, g)
	}
	wantExit := map[string]bool{
		"straight":     true,
		"infinite":     false,
		"condLoop":     true,
		"breakOut":     true,
		"selectBreak":  false, // break exits the select, not the for
		"selectReturn": true,
		"labeledBreak": true,
		"gotoBack":     true,
		"panicOnly":    true, // a panic edge terminates the path at exit
		"switches":     true,
	}
	for name, want := range wantExit {
		g, ok := cfgs[name]
		if !ok {
			t.Fatalf("no CFG built for %s", name)
		}
		if got := g.ExitReachable(); got != want {
			t.Errorf("%s: ExitReachable = %v, want %v", name, got, want)
		}
	}

	// Deferred calls replay at the exit in LIFO order.
	exit := cfgs["deferred"].Exit
	var replays int
	for _, n := range exit.Nodes {
		if _, ok := n.(*DeferredCall); ok {
			replays++
		}
	}
	if replays != 2 {
		t.Errorf("deferred: %d DeferredCall replays at exit, want 2", replays)
	}

	// Dead code after a return is pruned.
	dead := cfgs["deadAfterReturn"]
	for _, blk := range dead.Blocks {
		for _, n := range blk.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				t.Errorf("deadAfterReturn: unreachable assignment %v survived pruning", as.Tok)
			}
		}
	}
}

func TestCFGSelectLowering(t *testing.T) {
	cfgs := funcCFGs(t, `package p

func blocking(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case w := <-b:
		return w
	}
}

func nonBlocking(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
`)
	countMarkers := func(g *CFG) (heads, arms int) {
		for _, blk := range g.Blocks {
			if blk.SelectArm {
				arms++
			}
			for _, n := range blk.Nodes {
				if _, ok := n.(*SelectBlocking); ok {
					heads++
				}
			}
		}
		return
	}
	if heads, arms := countMarkers(cfgs["blocking"]); heads != 1 || arms != 2 {
		t.Errorf("blocking select: %d SelectBlocking markers, %d arm blocks; want 1, 2", heads, arms)
	}
	if heads, arms := countMarkers(cfgs["nonBlocking"]); heads != 0 || arms != 1 {
		t.Errorf("default select: %d SelectBlocking markers, %d arm blocks; want 0, 1", heads, arms)
	}
}

// FuzzCFGBuild asserts the builder's contract on arbitrary parseable
// Go: it never panics, and the graph it produces is connected and
// structurally consistent (checkCFGInvariants). Invalid-but-parseable
// control flow — breaks without loops, gotos to missing labels — must
// degrade, not crash.
func FuzzCFGBuild(f *testing.F) {
	f.Add(cfgShapesSrc)
	f.Add(`package p
func f(xs []int) int {
	s := 0
	for i, x := range xs {
		if x < 0 {
			continue
		}
		s += i * x
	}
	return s
}`)
	f.Add(`package p
func f() {
	break
	continue
	goto nowhere
	fallthrough
}`)
	f.Add(`package p
func f(c chan int) {
	defer close(c)
	go func() {
		for {
			select {}
		}
	}()
}`)
	f.Add(`package p
func f(k int) {
	switch {
	case k > 0:
		goto done
	}
done:
}`)
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				checkCFGInvariants(t, "fuzz", FuncCFG(fn))
			case *ast.FuncLit:
				checkCFGInvariants(t, "fuzz", FuncCFG(fn))
			}
			return true
		})
	})
}
