package sgvet

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// EpochPin polices the graph-versioning contract (PR 8): front-end
// serving code must obtain graphs through the epoch snapshot accessor
// (epoch.go's graphEntry.Resolve / epochState.Graph), never by reading
// a raw *graph.Graph out of a struct field. A stashed field reference
// is a time bomb under mutation: it silently keeps serving whatever
// version was current when the field was written, so a query admitted
// at epoch N can observe epoch N+1's adjacency mid-flight — exactly
// the torn read the version chain exists to prevent.
//
// Flagged: any struct-field selector in internal/server whose type is
// (or contains, as map/slice/array element) *graph.Graph.
//
// Exempt:
//
//   - epoch.go — the accessor implementation itself.
//   - *Config types — construction-time input read once at startup to
//     seed the root epoch, before any mutation can exist.
//   - BuildSpec.Graph — the spec is produced by the accessor for one
//     pinned (epoch, variant); providers consuming it are downstream
//     of pinning, not around it.
//   - WorkerDaemon — the worker's cache is keyed by content
//     fingerprint, which names a version precisely; there is no
//     "latest" to accidentally track.
//   - _test.go files (suite-wide rule).
var EpochPin = &Analyzer{
	Name: "epochpin",
	Doc:  "raw *graph.Graph field access in internal/server outside the epoch snapshot accessor",
	Run:  runEpochPin,
}

func runEpochPin(p *Pass) {
	if !strings.HasSuffix(p.Pkg.ImportPath, "internal/server") {
		return
	}
	for i, f := range p.Pkg.Files {
		if filepath.Base(p.Pkg.Filenames[i]) == "epoch.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sn := p.Pkg.Info.Selections[sel]
			if sn == nil || sn.Kind() != types.FieldVal {
				return true
			}
			if !carriesGraphPtr(sn.Type()) {
				return true
			}
			owner := fieldOwner(sn.Recv())
			switch {
			case owner == "":
				// Conservative: an owner we cannot name is not flagged.
			case strings.HasSuffix(owner, "Config"):
			case owner == "BuildSpec" && sel.Sel.Name == "Graph":
			case owner == "WorkerDaemon":
			default:
				p.Reportf(sel.Sel.Pos(),
					"raw *graph.Graph read from %s.%s bypasses epoch pinning: resolve a version with graphEntry.Resolve and read epochState.Graph instead",
					owner, sel.Sel.Name)
			}
			return true
		})
	}
}

// carriesGraphPtr reports whether t is *graph.Graph or a container
// whose elements are.
func carriesGraphPtr(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return isGraphNamed(u.Elem())
	case *types.Map:
		return carriesGraphPtr(u.Elem())
	case *types.Slice:
		return carriesGraphPtr(u.Elem())
	case *types.Array:
		return carriesGraphPtr(u.Elem())
	}
	return false
}

func isGraphNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Graph" &&
		obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/graph")
}

// fieldOwner names the struct type a field was selected from.
func fieldOwner(recv types.Type) string {
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if named, ok := recv.(*types.Named); ok && named.Obj() != nil {
		return named.Obj().Name()
	}
	return ""
}
