// Package sgvet is SympleGraph's project-invariant lint suite: a small
// go/analysis-style framework (stdlib-only — the build environment pins
// dependencies, so golang.org/x/tools is unavailable) plus the nine
// analyzers that machine-check invariants the engine's correctness
// leans on. The flow-sensitive ones run on a shared analysis engine —
// a per-function CFG (cfg.go), a generic forward dataflow solver
// (dataflow.go), and bottom-up interprocedural summaries cached in the
// per-package Facts (summary.go):
//
//   - depbreak — a dense-signal UDF whose neighbor traversal exits
//     early without ctx.EmitDep() silently loses the precise
//     loop-carried-dependency guarantee (paper Listing 2's failure
//     class). Backed by the type-resolved analysis in analyzer/typed,
//     including interprocedural helper breaks.
//   - snapdet — map iteration feeding an order-sensitive sink inside
//     snapshot/checkpoint/stats code is nondeterministic and breaks the
//     bit-identical recovery contract.
//   - commerr — comm/engine taxonomy errors compared with == (pointer
//     identity — never true for wrapped errors) or discarded; the
//     recovery loop and CLI exit codes classify with errors.As.
//   - ctxblock — channel operations in serving paths without a
//     ctx.Done()/default escape arm can wedge a handler forever and
//     defeat graceful drain.
//   - bufown — a Message.Payload read after Release(), or a buffer
//     touched after SendBufs handed its ownership to the transport,
//     races with the slab recycling it for the next superstep.
//   - fleetstate — fleet health compared via WorkerState.String() or
//     raw state-name strings instead of the typed enum; a renamed or
//     added state then fails silently at the branch, not the build.
//   - epochpin — a raw *graph.Graph struct-field read in the serving
//     front-end bypasses the epoch snapshot accessor and can observe a
//     mutation mid-query; versions must come from graphEntry.Resolve.
//   - lockorder — engine-backed: per-path mutex acquire/release
//     tracking; lock-order inversions, self-deadlocks, and locks held
//     across channel ops or blocking comm calls.
//   - leakgo — engine-backed: goroutine launches whose body's CFG has
//     no reachable exit, so no shutdown signal can ever stop them.
//
// Diagnostics can be suppressed per line with
//
//	//sgvet:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above. The reason is mandatory:
// an ignore documents why the invariant holds anyway, and `sgvet
// -audit` lists every suppression and fails on an empty justification.
package sgvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"

	"repro/internal/loader"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass gives an analyzer one loaded package, the package's shared
// engine cache (CFGs, declaration index, interprocedural summaries),
// and a reporting sink.
type Pass struct {
	Pkg   *loader.Package
	Facts *Facts
	diags *[]Diagnostic
	name  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.ReportAt(position.Filename, position.Line, position.Column, format, args...)
}

// ReportAt records a diagnostic at an explicit file/line, for findings
// derived from reports that carry positions as lines (analyzer/typed).
func (p *Pass) ReportAt(file string, line, col int, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.name,
		File:     file,
		Line:     line,
		Col:      col,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{DepBreak, SnapDet, CommErr, CtxBlock, BufOwn, FleetState, EpochPin, LockOrder, LeakGo}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("sgvet: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the packages and returns surviving
// diagnostics, sorted by position, with //sgvet:ignore suppressions
// applied.
func Run(pkgs []*loader.Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers)
	return diags
}

// Timing is one analyzer's aggregate wall time and surviving finding
// count over a RunTimed call — the `make lint` per-analyzer report and
// the findings artifact's cost ledger.
type Timing struct {
	Analyzer string  `json:"analyzer"`
	Millis   float64 `json:"millis"`
	Findings int     `json:"findings"`
}

// RunTimed is Run with a per-analyzer wall-time and finding-count
// breakdown (ordered like the analyzers argument).
func RunTimed(pkgs []*loader.Package, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	var diags []Diagnostic
	elapsed := make([]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		ignores := ignoreLines(pkg)
		facts := newFacts(pkg)
		var pkgDiags []Diagnostic
		for i, a := range analyzers {
			start := time.Now()
			a.Run(&Pass{Pkg: pkg, Facts: facts, diags: &pkgDiags, name: a.Name})
			elapsed[i] += time.Since(start)
		}
		for _, d := range pkgDiags {
			if ignores.covers(d) {
				continue
			}
			// Test files exercise failure paths on purpose — wedging
			// channels, asserting exact error identity — so the suite
			// polices shipped code only. (The source loader never feeds
			// test files; this matters in `go vet -vettool` mode, where
			// the toolchain hands us the test variant of each package.)
			if strings.HasSuffix(d.File, "_test.go") {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	timings := make([]Timing, len(analyzers))
	for i, a := range analyzers {
		timings[i] = Timing{
			Analyzer: a.Name,
			Millis:   float64(elapsed[i].Microseconds()) / 1000,
			Findings: counts[a.Name],
		}
	}
	return diags, timings
}

// ignoreSet maps file → line → set of ignored analyzer names ("*" for
// all).
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) covers(d Diagnostic) bool {
	lines := s[d.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		if names := lines[line]; names != nil && (names["*"] || names[d.Analyzer]) {
			return true
		}
	}
	// An ignore placed above the diagnostic line must be adjacent;
	// handled by the line-1 check. Same-line trailing comments are the
	// d.Line check.
	return false
}

// Artifact is the machine-readable record of one full lint run:
// `sgvet -artifact` writes it, `sgvet -check-artifact` (wired into
// `make verify`) validates it, and the timing ledger doubles as proof
// of which analyzers actually ran.
type Artifact struct {
	Analyzers    []Timing      `json:"analyzers"`
	Diagnostics  []Diagnostic  `json:"diagnostics"`
	Suppressions []Suppression `json:"suppressions"`
}

// Suppression is one //sgvet:ignore directive, with its justification
// text — the audit surface `sgvet -audit` renders and polices.
type Suppression struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
}

// CollectSuppressions parses every //sgvet:ignore directive in the
// packages, sorted by position.
func CollectSuppressions(pkgs []*loader.Package) []Suppression {
	var out []Suppression
	for _, pkg := range pkgs {
		out = append(out, parseSuppressions(pkg)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// parseSuppressions extracts the //sgvet:ignore directives of one
// package: `//sgvet:ignore <analyzer>[,<analyzer>] <reason...>`. A
// directive with no analyzer list suppresses everything ("*") — and
// necessarily has no reason, which the audit flags.
func parseSuppressions(pkg *loader.Package) []Suppression {
	var out []Suppression
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
				rest, ok := strings.CutPrefix(text, "sgvet:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				sup := Suppression{}
				if len(fields) == 0 {
					sup.Analyzers = []string{"*"}
				} else {
					for _, n := range strings.Split(fields[0], ",") {
						if n != "" {
							sup.Analyzers = append(sup.Analyzers, n)
						}
					}
					sup.Reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				pos := pkg.Fset.Position(c.Pos())
				sup.File = pos.Filename
				sup.Line = pos.Line
				out = append(out, sup)
			}
		}
	}
	return out
}

// ignoreLines folds a package's suppressions into the line-lookup shape
// Run consults.
func ignoreLines(pkg *loader.Package) ignoreSet {
	set := ignoreSet{}
	for _, sup := range parseSuppressions(pkg) {
		lines := set[sup.File]
		if lines == nil {
			lines = map[int]map[string]bool{}
			set[sup.File] = lines
		}
		if lines[sup.Line] == nil {
			lines[sup.Line] = map[string]bool{}
		}
		for _, n := range sup.Analyzers {
			lines[sup.Line][n] = true
		}
	}
	return set
}

// inspectFiles walks every file of the pass's package.
func (p *Pass) inspectFiles(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
