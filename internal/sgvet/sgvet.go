// Package sgvet is SympleGraph's project-invariant lint suite: a small
// go/analysis-style framework (stdlib-only — the build environment pins
// dependencies, so golang.org/x/tools is unavailable) plus the seven
// analyzers that machine-check invariants the engine's correctness
// leans on:
//
//   - depbreak — a dense-signal UDF whose neighbor traversal exits
//     early without ctx.EmitDep() silently loses the precise
//     loop-carried-dependency guarantee (paper Listing 2's failure
//     class). Backed by the type-resolved analysis in analyzer/typed,
//     including interprocedural helper breaks.
//   - snapdet — map iteration feeding an order-sensitive sink inside
//     snapshot/checkpoint/stats code is nondeterministic and breaks the
//     bit-identical recovery contract.
//   - commerr — comm/engine taxonomy errors compared with == (pointer
//     identity — never true for wrapped errors) or discarded; the
//     recovery loop and CLI exit codes classify with errors.As.
//   - ctxblock — channel operations in serving paths without a
//     ctx.Done()/default escape arm can wedge a handler forever and
//     defeat graceful drain.
//   - bufown — a Message.Payload read after Release(), or a buffer
//     touched after SendBufs handed its ownership to the transport,
//     races with the slab recycling it for the next superstep.
//   - fleetstate — fleet health compared via WorkerState.String() or
//     raw state-name strings instead of the typed enum; a renamed or
//     added state then fails silently at the branch, not the build.
//   - epochpin — a raw *graph.Graph struct-field read in the serving
//     front-end bypasses the epoch snapshot accessor and can observe a
//     mutation mid-query; versions must come from graphEntry.Resolve.
//
// Diagnostics can be suppressed per line with
//
//	//sgvet:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above. The reason is mandatory in
// spirit: an ignore documents why the invariant holds anyway.
package sgvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analyzer/typed"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass gives an analyzer one loaded package and a reporting sink.
type Pass struct {
	Pkg   *typed.Package
	diags *[]Diagnostic
	name  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.ReportAt(position.Filename, position.Line, position.Column, format, args...)
}

// ReportAt records a diagnostic at an explicit file/line, for findings
// derived from reports that carry positions as lines (analyzer/typed).
func (p *Pass) ReportAt(file string, line, col int, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.name,
		File:     file,
		Line:     line,
		Col:      col,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{DepBreak, SnapDet, CommErr, CtxBlock, BufOwn, FleetState, EpochPin}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("sgvet: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the packages and returns surviving
// diagnostics, sorted by position, with //sgvet:ignore suppressions
// applied.
func Run(pkgs []*typed.Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := ignoreLines(pkg)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Pkg: pkg, diags: &pkgDiags, name: a.Name})
		}
		for _, d := range pkgDiags {
			if ignores.covers(d) {
				continue
			}
			// Test files exercise failure paths on purpose — wedging
			// channels, asserting exact error identity — so the suite
			// polices shipped code only. (The source loader never feeds
			// test files; this matters in `go vet -vettool` mode, where
			// the toolchain hands us the test variant of each package.)
			if strings.HasSuffix(d.File, "_test.go") {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreSet maps file → line → set of ignored analyzer names ("*" for
// all).
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) covers(d Diagnostic) bool {
	lines := s[d.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		if names := lines[line]; names != nil && (names["*"] || names[d.Analyzer]) {
			return true
		}
	}
	// An ignore placed above the diagnostic line must be adjacent;
	// handled by the line-1 check. Same-line trailing comments are the
	// d.Line check.
	return false
}

// ignoreLines parses //sgvet:ignore directives out of a package.
func ignoreLines(pkg *typed.Package) ignoreSet {
	set := ignoreSet{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
				rest, ok := strings.CutPrefix(text, "sgvet:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				names := map[string]bool{}
				if len(fields) == 0 {
					names["*"] = true
				} else {
					for _, n := range strings.Split(fields[0], ",") {
						if n != "" {
							names[n] = true
						}
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = map[string]bool{}
				}
				for n := range names {
					lines[pos.Line][n] = true
				}
			}
		}
	}
	return set
}

// inspectFiles walks every file of the pass's package.
func (p *Pass) inspectFiles(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
