package sgvet

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of sgvet's analysis engine: a
// per-function CFG built purely from syntax (go/ast), so it works on
// any parseable Go — including the arbitrary inputs the fuzz target
// feeds it — and never needs type information. The dataflow solver
// (dataflow.go) and the analyzers' transfer functions layer types on
// top.
//
// Blocks are "shallow": a block's Nodes list holds statements and
// expressions in execution order, and nested control flow is never
// inside a node — it gets its own blocks. Three synthetic node kinds
// mark places where the builder had to lower a construct:
//
//   - *RangeHead sits in a range loop's head block and stands for one
//     evaluation of the header: the ranged expression is read and the
//     key/value variables are rebound. Transfer functions handle it
//     without walking the loop body (which has its own blocks).
//   - *DeferredCall replays a registered defer at the function exit in
//     LIFO order. The *ast.DeferStmt itself stays at its registration
//     point, where its arguments are evaluated; the call's effect
//     happens at exit, which is where every return edge lands.
//   - *SelectBlocking sits in the head block of a select with no
//     default clause: the select as a whole blocks there. The per-arm
//     comm operations are the first node of each arm block, and those
//     blocks carry SelectArm so analyzers know the op itself does not
//     block (the head already did).
//
// Function literals are the one kind of nesting a node may contain: a
// closure body is a different function, so it stays whole inside the
// node and analyzers decide whether to descend (bufown does, matching
// the historical block-scoped checker) or build a separate CFG for it
// (leakgo does).

// Block is one straight-line run of nodes.
type Block struct {
	// Index is the block's position in CFG.Blocks; -1 on a block pruned
	// as unreachable (notably the Exit block of a function that can
	// never return).
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// SelectArm marks a block whose first node is a select clause's
	// comm statement.
	SelectArm bool
}

// CFG is one function's control-flow graph. After construction every
// block in Blocks is reachable from Entry; Exit may have been pruned
// (see ExitReachable).
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// ExitReachable reports whether any path through the function reaches
// the exit — false means the body can never return (an unconditional
// infinite loop, the shape leakgo convicts).
func (c *CFG) ExitReachable() bool { return c.Exit.Index >= 0 }

// RangeHead stands for one evaluation of a range loop's header.
type RangeHead struct{ Range *ast.RangeStmt }

func (r *RangeHead) Pos() token.Pos { return r.Range.Pos() }
func (r *RangeHead) End() token.Pos { return r.Range.X.End() }

// DeferredCall replays a registered defer at the function exit.
type DeferredCall struct{ Defer *ast.DeferStmt }

func (d *DeferredCall) Pos() token.Pos { return d.Defer.Pos() }
func (d *DeferredCall) End() token.Pos { return d.Defer.End() }

// SelectBlocking marks the head of a select with no default clause —
// the point where the goroutine parks until an arm is ready.
type SelectBlocking struct{ Select *ast.SelectStmt }

func (s *SelectBlocking) Pos() token.Pos { return s.Select.Pos() }
func (s *SelectBlocking) End() token.Pos { return s.Select.End() }

// FuncCFG builds the CFG for a function declaration or literal. A nil
// or absent body yields the trivial entry→exit graph.
func FuncCFG(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	return buildCFG(body)
}

// ctrlTarget is one enclosing breakable construct on the builder's
// stack. contBlk is nil for switch/select (continue passes through to
// the nearest loop).
type ctrlTarget struct {
	label   string
	brkBlk  *Block
	contBlk *Block
}

type cfgBuilder struct {
	cfg     *CFG
	cur     *Block // nil once the current path terminated
	exit    *Block
	targets []ctrlTarget
	labels  map[string]*Block
	label   string // pending label for the next loop/switch/select
	ftBlk   *Block // fallthrough target inside a switch clause
	defers  []*ast.DeferStmt
}

func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*Block{}}
	b.cfg.Entry = b.newBlock()
	b.exit = b.newBlock()
	b.cfg.Exit = b.exit
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	if b.cur != nil {
		b.edge(b.cur, b.exit)
	}
	// Deferred calls replay at exit in LIFO registration order. Every
	// return edge lands on exit, so the replay covers all paths.
	for i := len(b.defers) - 1; i >= 0; i-- {
		b.exit.Nodes = append(b.exit.Nodes, &DeferredCall{Defer: b.defers[i]})
	}
	b.cfg.prune()
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// ensure gives the builder a current block: statements that follow a
// terminator (dead code) land in a fresh block that pruning removes
// unless a label makes it reachable.
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Cond != nil {
			b.add(s.Cond)
		}
		head := b.ensure()
		after := b.newBlock()
		then := b.newBlock()
		b.edge(head, then)
		b.cur = then
		if s.Body != nil {
			b.stmtList(s.Body.List)
		}
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(head, els)
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(head, after)
		}
		b.cur = after

	case *ast.ForStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.ensure(), head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		bodyBlk := b.newBlock()
		after := b.newBlock()
		b.edge(head, bodyBlk)
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		if s.Post != nil {
			post := b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.targets = append(b.targets, ctrlTarget{label: lbl, brkBlk: after, contBlk: cont})
		b.cur = bodyBlk
		if s.Body != nil {
			b.stmtList(s.Body.List)
		}
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.RangeStmt:
		lbl := b.takeLabel()
		head := b.newBlock()
		b.edge(b.ensure(), head)
		head.Nodes = append(head.Nodes, &RangeHead{Range: s})
		bodyBlk := b.newBlock()
		after := b.newBlock()
		b.edge(head, bodyBlk)
		b.edge(head, after) // the ranged collection may be empty
		b.targets = append(b.targets, ctrlTarget{label: lbl, brkBlk: after, contBlk: head})
		b.cur = bodyBlk
		if s.Body != nil {
			b.stmtList(s.Body.List)
		}
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		lbl := b.takeLabel()
		head := b.ensure()
		after := b.newBlock()
		type arm struct {
			blk    *Block
			clause *ast.CommClause
		}
		var arms []arm
		hasDefault := false
		if s.Body != nil {
			for _, cs := range s.Body.List {
				cc, ok := cs.(*ast.CommClause)
				if !ok {
					continue
				}
				blk := b.newBlock()
				b.edge(head, blk)
				if cc.Comm != nil {
					blk.Nodes = append(blk.Nodes, cc.Comm)
					blk.SelectArm = true
				} else {
					hasDefault = true
				}
				arms = append(arms, arm{blk, cc})
			}
		}
		if !hasDefault {
			head.Nodes = append(head.Nodes, &SelectBlocking{Select: s})
		}
		b.targets = append(b.targets, ctrlTarget{label: lbl, brkBlk: after})
		for _, a := range arms {
			b.cur = a.blk
			b.stmtList(a.clause.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.LabeledStmt:
		blk := b.labelBlock(s.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, blk)
		}
		b.cur = blk
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""

	case *ast.BranchStmt:
		cur := b.ensure()
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s.Label, false); t != nil {
				b.edge(cur, t.brkBlk)
			} else {
				b.edge(cur, b.exit)
			}
		case token.CONTINUE:
			if t := b.findTarget(s.Label, true); t != nil {
				b.edge(cur, t.contBlk)
			} else {
				b.edge(cur, b.exit)
			}
		case token.GOTO:
			if s.Label != nil {
				b.edge(cur, b.labelBlock(s.Label.Name))
			}
		case token.FALLTHROUGH:
			if b.ftBlk != nil {
				b.edge(cur, b.ftBlk)
			}
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.exit)
		b.cur = nil

	case *ast.DeferStmt:
		// Registration point: arguments are evaluated here; the call's
		// effect replays at exit via DeferredCall.
		b.add(s)
		b.defers = append(b.defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminatingCall(call) {
			b.edge(b.cur, b.exit)
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, Go, Send, IncDec, ...: straight-line.
		b.add(s)
	}
}

// switchStmt lowers expression and type switches: head evaluates
// Init/Tag (case expressions stay in their clause block — a deliberate
// approximation; Go evaluates them in the head), every clause block is
// a successor of the head, fallthrough edges to the next clause's
// block, and a switch without a default can skip straight to the
// follow block.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	lbl := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.ensure()
	after := b.newBlock()
	var clauses []*ast.CaseClause
	if body != nil {
		for _, cs := range body.List {
			if cc, ok := cs.(*ast.CaseClause); ok {
				clauses = append(clauses, cc)
			}
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.targets = append(b.targets, ctrlTarget{label: lbl, brkBlk: after})
	for i, cc := range clauses {
		b.cur = blocks[i]
		saveFT := b.ftBlk
		if i+1 < len(blocks) {
			b.ftBlk = blocks[i+1]
		} else {
			b.ftBlk = nil
		}
		b.stmtList(cc.Body)
		b.ftBlk = saveFT
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// findTarget resolves a break (needCont=false) or continue
// (needCont=true) to its enclosing construct. Returns nil on invalid
// code (unknown label, continue outside a loop) — the builder degrades
// to an exit edge rather than failing, so the fuzz target's arbitrary
// inputs never panic.
func (b *cfgBuilder) findTarget(label *ast.Ident, needCont bool) *ctrlTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needCont && t.contBlk == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

// isTerminatingCall matches calls that never return, syntactically:
// the builder has no type information, so this is a name-shape check.
// A miss is harmless (an extra exit edge or a spurious follow block);
// the listed names cover the repository's idioms.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln", "cliutil.Fatalf":
			return true
		}
	}
	return false
}

// prune removes blocks unreachable from the entry, re-indexes the
// survivors, and filters edge lists to survivors. Pruned blocks keep
// Index -1 (ExitReachable keys on this).
func (c *CFG) prune() {
	reach := map[*Block]bool{c.Entry: true}
	stack := []*Block{c.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	kept := c.Blocks[:0]
	for _, blk := range c.Blocks {
		if reach[blk] {
			blk.Index = len(kept)
			kept = append(kept, blk)
		} else {
			blk.Index = -1
		}
	}
	c.Blocks = kept
	for _, blk := range c.Blocks {
		succs := blk.Succs[:0]
		for _, s := range blk.Succs {
			if reach[s] {
				succs = append(succs, s)
			}
		}
		blk.Succs = succs
		preds := blk.Preds[:0]
		for _, p := range blk.Preds {
			if reach[p] {
				preds = append(preds, p)
			}
		}
		blk.Preds = preds
	}
}
