package sgvet

// The dataflow half of the engine: a generic forward fixpoint solver
// over the CFGs cfg.go builds. Analyses instantiate it with a fact
// type F and three pure functions:
//
//   - transfer applies one block's nodes to an incoming fact and
//     returns the outgoing fact. It must not mutate its argument (the
//     same fact value may flow to several successors) and must not
//     report — reporting happens in a separate final pass, otherwise
//     every fixpoint iteration would duplicate the diagnostics.
//   - join merges the facts arriving at a merge point. All the
//     analyzers in this suite are may-analyses (a poison or a held
//     lock on *any* incoming path is real), so join is a union.
//   - equal detects convergence.
//
// The solver seeds the entry block, propagates along successor edges
// with a worklist, and joins only facts from paths that have actually
// been reached — the classic "bottom = unreached" treatment, which
// keeps the first visit of a block from being watered down by a
// not-yet-computed predecessor.
//
// Termination: with a finite lattice and monotone transfer the
// worklist drains on its own; because analyzer fact domains are
// bounded by the variables a function mentions, that is the normal
// case. A step cap proportional to the block count backstops the
// solver against a non-monotone transfer bug (and against adversarial
// fuzz inputs) — hitting it abandons precision, never correctness,
// since analyses only read the facts the solver had at that point.

// solveForward runs the fixpoint and returns the *incoming* fact per
// block, indexed by Block.Index. Reporting passes re-apply transfer to
// in-facts with diagnostics enabled.
func solveForward[F any](g *CFG, entry F, join func(F, F) F, equal func(F, F) bool, transfer func(*Block, F) F) []F {
	n := len(g.Blocks)
	in := make([]F, n)
	reached := make([]bool, n)
	queued := make([]bool, n)
	in[g.Entry.Index] = entry
	reached[g.Entry.Index] = true
	queued[g.Entry.Index] = true
	work := []*Block{g.Entry}
	steps, maxSteps := 0, n*64+256
	for len(work) > 0 && steps < maxSteps {
		steps++
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		out := transfer(blk, in[blk.Index])
		for _, s := range blk.Succs {
			var next F
			if !reached[s.Index] {
				reached[s.Index] = true
				next = out
			} else {
				next = join(in[s.Index], out)
				if equal(next, in[s.Index]) {
					continue
				}
			}
			in[s.Index] = next
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}
