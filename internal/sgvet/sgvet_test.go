package sgvet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/analyzer/typed"
)

// repoRoot walks up from the working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// loadFixture writes src as a single-file package under an optional
// subdir (some analyzers scope by import-path suffix) and loads it with
// imports resolving against the real module.
func loadFixture(t *testing.T, subdir, src string) *typed.Package {
	t.Helper()
	dir := t.TempDir()
	if subdir != "" {
		dir = filepath.Join(dir, filepath.FromSlash(subdir))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := typed.NewLoader(typed.Config{ModuleRoot: repoRoot(t)})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture has type errors: %v", pkg.TypeErrors)
	}
	return pkg
}

// checkFixture runs the analyzers over the fixture and matches the
// diagnostics against `// want:name[,name]` markers: each marked line
// must produce exactly the listed analyzers' diagnostics, and no
// unmarked line may produce any.
func checkFixture(t *testing.T, src, subdir string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	pkg := loadFixture(t, subdir, src)
	diags := Run([]*typed.Package{pkg}, analyzers)

	want := map[int][]string{}
	for i, line := range strings.Split(src, "\n") {
		idx := strings.Index(line, "// want:")
		if idx < 0 {
			continue
		}
		names := strings.Fields(line[idx+len("// want:"):])
		if len(names) == 0 {
			t.Fatalf("line %d: empty want marker", i+1)
		}
		want[i+1] = append(want[i+1], strings.Split(names[0], ",")...)
	}
	got := map[int][]string{}
	for _, d := range diags {
		got[d.Line] = append(got[d.Line], d.Analyzer)
	}
	key := func(m map[int][]string, line int) string {
		names := append([]string(nil), m[line]...)
		sort.Strings(names)
		return strings.Join(names, ",")
	}
	lines := map[int]bool{}
	for l := range want {
		lines[l] = true
	}
	for l := range got {
		lines[l] = true
	}
	for l := range lines {
		if w, g := key(want, l), key(got, l); w != g {
			t.Errorf("line %d: want diagnostics [%s], got [%s]\nall diagnostics:\n%s", l, w, g, renderDiags(diags))
		}
	}
	return diags
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

const udfHeader = `package fixture

import (
	"repro/internal/core"
	"repro/internal/graph"
)

var frontier interface{ Get(int) bool }
var _ = graph.VertexID(0)
var _ core.Mode
`

func TestDepBreakFixture(t *testing.T) {
	src := udfHeader + `
func bad(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		ctx.Edge()
		if frontier.Get(int(u)) {
			break // want:depbreak
		}
	}
}

func helperBad(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	if firstActive(srcs) >= 0 { // want:depbreak
		ctx.Emit(uint32(dst))
	}
}

func firstActive(srcs []graph.VertexID) int {
	for i, u := range srcs {
		if frontier.Get(int(u)) {
			return i
		}
	}
	return -1
}

func good(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		ctx.Edge()
		if frontier.Get(int(u)) {
			ctx.EmitDep()
			break
		}
	}
}

func localPick(ctx *core.DenseCtx[uint32], dst graph.VertexID, srcs []graph.VertexID, _ []float32) {
	for _, u := range srcs {
		ctx.Edge()
		if frontier.Get(int(u)) {
			break //sgc:local machine-local candidate pick, full scan already done
		}
	}
}
`
	checkFixture(t, src, "", DepBreak)
}

func TestSnapDetFixture(t *testing.T) {
	src := `package fixture

import (
	"fmt"
	"io"
	"sort"
)

type StatsCodec struct{}

func (c *StatsCodec) EncodeStats(w io.Writer, m map[string]int64) {
	for k, v := range m { // want:snapdet
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func Snapshot(m map[string]int) []string {
	var keys []string
	for k := range m { // want:snapdet
		keys = append(keys, k)
	}
	return keys
}

func SnapshotSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Names is not a serialization context, but it returns the slice it
// builds from map order — callers observe randomness.
func Names(m map[string]bool) []string {
	var out []string
	for k := range m { // want:snapdet
		out = append(out, k)
	}
	return out
}

// EncodeTotal accumulates floats in a deterministic context: float
// addition is not associative, so the sum depends on iteration order.
func EncodeTotal(m map[string]float64) float64 {
	var t float64
	for _, v := range m { // want:snapdet
		t += v
	}
	return t
}

// sumCounts folds integers — order-insensitive, fine anywhere.
func sumCounts(m map[string]int64) int64 {
	var t int64
	for _, v := range m {
		t += v
	}
	return t
}

// cloneInto writes map→map — order-insensitive.
func cloneInto(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// prune deletes during iteration — the staged-checkpoint idiom, fine.
func (c *StatsCodec) prune(m map[string]int) {
	for k := range m {
		if m[k] == 0 {
			delete(m, k)
		}
	}
}
`
	checkFixture(t, src, "", SnapDet)
}

func TestCommErrFixture(t *testing.T) {
	src := `package fixture

import (
	"errors"
	"repro/internal/comm"
)

var ep comm.Endpoint
var errSentinel = errors.New("sentinel")

func classifyByIdentity(err error) bool {
	to := &comm.TimeoutError{}
	return err == to // want:commerr
}

func compareSentinels(err error) bool {
	return err == errSentinel // want:commerr
}

func classifyRight(err error) bool {
	var to *comm.TimeoutError
	return errors.As(err, &to) || errors.Is(err, errSentinel)
}

func nilCheck(err error) bool {
	return err != nil
}

func discardBare() {
	comm.Barrier(ep, 1) // want:commerr
}

func discardBlank() int64 {
	v, _ := comm.AllReduceInt64(ep, 1, 2, nil) // want:commerr
	return v
}

func handled() error {
	return comm.Barrier(ep, 1)
}

func deferred() {
	defer comm.Barrier(ep, 1)
}
`
	checkFixture(t, src, "", CommErr)
}

func TestCtxBlockFixture(t *testing.T) {
	src := `package fixture

import (
	"context"
	"time"
)

type daemon struct {
	queue chan int
	done  chan struct{}
}

func (d *daemon) leaseBad() int {
	return <-d.queue // want:ctxblock
}

func (d *daemon) leaseGood(ctx context.Context) int {
	select {
	case v := <-d.queue:
		return v
	case <-ctx.Done():
		return -1
	}
}

func (d *daemon) sendBad(v int) {
	d.queue <- v // want:ctxblock
}

func (d *daemon) sendGood(v int) bool {
	select {
	case d.queue <- v:
		return true
	default:
		return false
	}
}

func (d *daemon) twoPeers(other chan int) int {
	select { // want:ctxblock
	case v := <-d.queue:
		return v
	case v := <-other:
		return v
	}
}

func (d *daemon) waitShutdown() {
	<-d.done
}

func (d *daemon) deadlineWait(other chan int) int {
	select {
	case v := <-other:
		return v
	case <-time.After(time.Second):
		return -1
	}
}

func (d *daemon) drain() {
	for range d.queue {
	}
}

func (d *daemon) provedNonBlocking() int {
	//sgvet:ignore ctxblock capacity token returned to a buffered channel that always has room
	return <-d.queue
}
`
	checkFixture(t, src, "internal/server", CtxBlock)
}

// TestCtxBlockScopedToServer: the same blocking ops outside an
// internal/server package produce nothing.
func TestCtxBlockScopedToServer(t *testing.T) {
	src := `package fixture

func recv(ch chan int) int {
	return <-ch
}
`
	checkFixture(t, src, "", CtxBlock)
}

func TestIgnoreDirectiveSameLineAndAbove(t *testing.T) {
	src := `package fixture

type daemon struct{ queue chan int }

func (d *daemon) sameLine() int {
	return <-d.queue //sgvet:ignore ctxblock buffered by construction
}

func (d *daemon) lineAbove() int {
	//sgvet:ignore ctxblock buffered by construction
	return <-d.queue
}

func (d *daemon) wrongName() int {
	//sgvet:ignore snapdet wrong analyzer name does not suppress
	return <-d.queue // want:ctxblock
}
`
	checkFixture(t, src, "internal/server", CtxBlock)
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %v, %v", all, err)
	}
	two, err := ByName("depbreak, snapdet")
	if err != nil || len(two) != 2 || two[0].Name != "depbreak" || two[1].Name != "snapdet" {
		t.Fatalf("ByName list = %v, %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("expected error for unknown analyzer")
	}
}

func TestBufOwnFixture(t *testing.T) {
	src := `package fixture

import "repro/internal/comm"

var ep comm.Endpoint

func useAfterRelease() byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	b := m.Payload[0]
	m.Release()
	return b + m.Payload[0] // want:bufown
}

func aliasAfterRelease() byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	p := m.Payload
	m.Release()
	return p[0] // want:bufown
}

func bufAfterSendBufs(buf []byte) (int, error) {
	err := ep.SendBufs(1, comm.KindUpdate, 1, comm.Buffers{buf})
	buf[0] = 0 // want:bufown
	return len(buf), err // want:bufown
}

func convAfterSendBufs(bufs [][]byte) (int, error) {
	err := ep.SendBufs(1, comm.KindUpdate, 1, comm.Buffers(bufs))
	return len(bufs), err // want:bufown
}

func okUseBeforeRelease() byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	b := m.Payload[0]
	m.Release()
	return b
}

func okSiblingBranch(send bool, bufs comm.Buffers) (int, error) {
	if send {
		return 0, ep.SendBufs(1, comm.KindUpdate, 1, bufs)
	} else {
		return len(bufs), nil
	}
}

func okReassign() byte {
	m, _ := ep.Recv(0, comm.KindUpdate, 1)
	m.Release()
	m, _ = ep.Recv(0, comm.KindUpdate, 2)
	return m.Payload[0]
}

func okIndexedHandoff(chunks [][][]byte) (int, error) {
	err := ep.SendBufs(1, comm.KindUpdate, 1, comm.Buffers(chunks[0]))
	return len(chunks), err
}

type binCtx struct {
	bins  [][]byte
	frame []byte
}

func fieldAfterSendBufs(ctx *binCtx) (int, error) {
	err := ep.SendBufs(1, comm.KindUpdate, 1, comm.Buffers(ctx.bins))
	ctx.bins[0][0] = 0 // want:bufown
	return len(ctx.bins), err // want:bufown
}

func fieldLiteralAfterSendBufs(ctx *binCtx) (int, error) {
	err := ep.SendBufs(1, comm.KindUpdate, 1, comm.Buffers{ctx.frame})
	return len(ctx.frame), err // want:bufown
}

func okOtherReceiverField(ctx, other *binCtx) (int, error) {
	err := ep.SendBufs(1, comm.KindUpdate, 1, comm.Buffers(ctx.bins))
	return len(other.bins), err
}

func okFieldRebind(ctx *binCtx) (int, error) {
	err := ep.SendBufs(1, comm.KindUpdate, 1, comm.Buffers(ctx.bins))
	ctx.bins = make([][]byte, 4)
	return len(ctx.bins), err
}

func okReceiverRebind(ctx, fresh *binCtx) (int, error) {
	err := ep.SendBufs(1, comm.KindUpdate, 1, comm.Buffers{ctx.frame})
	ctx = fresh
	return len(ctx.frame), err
}

func okOtherField(ctx *binCtx) (int, error) {
	err := ep.SendBufs(1, comm.KindUpdate, 1, comm.Buffers(ctx.bins))
	return len(ctx.frame), err
}
`
	checkFixture(t, src, "", BufOwn)
}

func TestFleetStateFixture(t *testing.T) {
	src := `package fixture

import (
	"fmt"

	"repro/internal/server"
)

func compareViaString(s server.WorkerState) bool {
	return s.String() == "dead" // want:fleetstate
}

func compareViaStringFlipped(s server.WorkerState) bool {
	return "healthy" != s.String() // want:fleetstate
}

func switchOnString(s server.WorkerState) int {
	switch s.String() { // want:fleetstate
	case "healthy":
		return 0
	default:
		return 1
	}
}

func rawStateField(w server.FleetWorker, state string) bool {
	return state == "rejoining" // want:fleetstate
}

func rawStatusVar(healthStatus string) bool {
	return "suspect" == healthStatus // want:fleetstate
}

func okTypedCompare(s server.WorkerState) bool {
	return s == server.StateDead || s != server.StateHealthy
}

func okTypedSwitch(s server.WorkerState) int {
	switch s {
	case server.StateHealthy:
		return 0
	default:
		return 1
	}
}

func okRenderForLogs(s server.WorkerState) string {
	return fmt.Sprintf("worker is %s", s.String())
}

func okUnrelatedLiteral(graphName string) bool {
	// "dead" as data, not as a health state: no state-ish identifier.
	return graphName == "dead"
}

func okLiteralVsLiteral() bool {
	return "dead" == "healthy"
}

func okIgnored(state string) bool {
	//sgvet:ignore fleetstate parsing the wire form, enum not available here
	return state == "dead"
}
`
	checkFixture(t, src, "", FleetState)
}

func TestEpochPinFixture(t *testing.T) {
	src := `package fixture

import "repro/internal/graph"

type holder struct {
	g    *graph.Graph
	many map[string]*graph.Graph
	list []*graph.Graph
}

type holderConfig struct {
	Graphs map[string]*graph.Graph
}

type BuildSpec struct {
	Graph *graph.Graph
	Name  string
}

type WorkerDaemon struct {
	graphs map[string]*graph.Graph
}

func badDirect(h *holder) *graph.Graph {
	return h.g // want:epochpin
}

func badMap(h holder) *graph.Graph {
	return h.many["g"] // want:epochpin
}

func badSlice(h *holder) *graph.Graph {
	return h.list[0] // want:epochpin
}

func okConfig(c holderConfig) int { return len(c.Graphs) }

func okSpec(s BuildSpec) *graph.Graph { return s.Graph }

func okWorkerCache(d *WorkerDaemon) int { return len(d.graphs) }

func okLocal() *graph.Graph {
	var g *graph.Graph
	return g
}

func okIgnored(h *holder) *graph.Graph {
	//sgvet:ignore epochpin fixture proves the directive works
	return h.g
}
`
	checkFixture(t, src, "internal/server", EpochPin)
}

func TestEpochPinScopedToServer(t *testing.T) {
	src := `package fixture

import "repro/internal/graph"

type holder struct{ g *graph.Graph }

func outsideServer(h *holder) *graph.Graph { return h.g }
`
	checkFixture(t, src, "", EpochPin)
}
