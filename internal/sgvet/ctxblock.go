package sgvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// CtxBlock guards the query service's graceful-drain contract (PR 4):
// every blocking channel operation on a serving path must carry an
// escape hatch, or one wedged peer pins a handler goroutine forever —
// admission slots leak, drain never completes, and shutdown hangs.
//
// Scope: packages whose import path ends in internal/server (the
// daemon, scheduler, pool, and admission layers).
//
// Flagged:
//   - a send or receive outside any select statement;
//   - a select statement none of whose arms is an escape: a default
//     clause, a receive from a Done()/deadline channel (ctx.Done(),
//     time.After, a Timer/Ticker .C), or a receive from a channel whose
//     name signals lifecycle (done, stop, quit, closed, shutdown).
//
// Not flagged: range-over-channel consumers (terminated by close) and
// close() itself. Deliberately-blocking ops — e.g. returning an
// admission token to a buffered channel that by construction has room —
// are annotated with //sgvet:ignore ctxblock and a proof of why they
// cannot block.
var CtxBlock = &Analyzer{
	Name: "ctxblock",
	Doc:  "channel op on a serving path without a shutdown/deadline escape arm",
	Run:  runCtxBlock,
}

var lifecycleChanRe = regexp.MustCompile(`(?i)done|stop|quit|clos|shut|cancel`)

func runCtxBlock(p *Pass) {
	if !strings.HasSuffix(p.Pkg.ImportPath, "internal/server") {
		return
	}
	for _, f := range p.Pkg.Files {
		// First pass: record every channel op that is the comm clause
		// of a select — those are judged per-select, not as bare ops.
		inSelect := map[ast.Node]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, c := range sel.Body.List {
				clause := c.(*ast.CommClause)
				if clause.Comm == nil {
					continue
				}
				markCommOps(clause.Comm, inSelect)
			}
			if !hasEscapeArm(sel) {
				p.Reportf(sel.Pos(), "select has no escape arm: add a default, ctx.Done(), deadline, or shutdown-channel case so a wedged peer cannot pin this goroutine")
			}
			return true
		})
		// Second pass: bare ops.
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.RangeStmt:
				// Range-over-channel is terminated by close; skip the X
				// expression but keep walking the body.
				if isChanRecv(p, s.X) {
					ast.Inspect(s.Body, func(m ast.Node) bool { return reportBareOp(p, m, inSelect) })
					return false
				}
			default:
				return reportBareOp(p, n, inSelect)
			}
			return true
		})
	}
}

func reportBareOp(p *Pass, n ast.Node, inSelect map[ast.Node]bool) bool {
	switch s := n.(type) {
	case *ast.SendStmt:
		if !inSelect[s] {
			p.Reportf(s.Arrow, "blocking send outside select: wrap in a select with a ctx.Done()/shutdown arm (or //sgvet:ignore ctxblock with a proof it cannot block)")
		}
	case *ast.UnaryExpr:
		if s.Op == token.ARROW && !inSelect[s] && !isEscapeChan(s.X) {
			p.Reportf(s.OpPos, "blocking receive outside select: wrap in a select with a ctx.Done()/shutdown arm (or //sgvet:ignore ctxblock with a proof it cannot block)")
		}
	}
	return true
}

// markCommOps records the channel operations that form a select comm
// clause: `case ch <- v:`, `case <-ch:`, `case v := <-ch:`.
func markCommOps(comm ast.Stmt, set map[ast.Node]bool) {
	set[comm] = true
	switch s := comm.(type) {
	case *ast.ExprStmt:
		set[s.X] = true
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			set[r] = true
		}
	}
}

// hasEscapeArm reports whether any arm of the select lets the goroutine
// escape a wedged peer.
func hasEscapeArm(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		clause := c.(*ast.CommClause)
		if clause.Comm == nil {
			return true // default
		}
		var recv ast.Expr
		switch s := clause.Comm.(type) {
		case *ast.ExprStmt:
			recv = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recv = s.Rhs[0]
			}
		}
		ue, ok := recv.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			continue
		}
		if isEscapeChan(ue.X) {
			return true
		}
	}
	return false
}

// isEscapeChan recognizes channel expressions that fire on shutdown or
// deadline: ctx.Done(), time.After(...), timer.C, and lifecycle-named
// channels (d.done, s.stopCh, ...).
func isEscapeChan(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Done" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && (sel.Sel.Name == "After" || sel.Sel.Name == "Tick") {
				return true
			}
		}
	case *ast.SelectorExpr:
		if x.Sel.Name == "C" {
			return true // timer/ticker channel
		}
		return lifecycleChanRe.MatchString(x.Sel.Name)
	case *ast.Ident:
		return lifecycleChanRe.MatchString(x.Name)
	}
	return false
}

// isChanRecv reports whether ranging over e consumes a channel.
func isChanRecv(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
