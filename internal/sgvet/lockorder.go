package sgvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder tracks sync.Mutex/RWMutex acquire–release per control-flow
// path on the engine (cfg.go + dataflow.go) and convicts the three
// deadlock shapes a serving fleet actually hits:
//
//   - lock-order inversion: somewhere in the package mutex A is
//     acquired while B is held, and somewhere else B while A is held.
//     Two goroutines interleaving those paths deadlock. Order edges
//     are type-level — (named type, field) for field mutexes — because
//     lock ordering is a discipline of the code, not of one instance.
//   - self-deadlock: re-acquiring a mutex that is must-held on the
//     same path (Go mutexes are not reentrant), directly or by calling
//     an in-package helper whose summary says it acquires it.
//   - lock held across a blocking point: a channel send/receive
//     outside a default-armed select, a select with no default, or a
//     blocking internal/comm call (Send/Recv/SendBufs/Expect/Dial...)
//     while any mutex is may-held. A stalled peer then wedges every
//     contender of the mutex.
//
// Facts carry a may-held set (union at joins — feeding the
// held-across-blocking check, where any path holding is real) and a
// must-held set (intersection at joins — feeding the self-deadlock and
// order-edge checks, which should fire only when the hold is certain).
// `defer mu.Unlock()` releases at the function exit like every defer,
// so the lock is correctly held through the body. In-package helpers
// get bottom-up summaries: the set of type-level locks they (or their
// callees, depth-bounded) acquire, and whether they block.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock-order inversion, self-deadlock, or mutex held across a blocking operation",
	Run:  runLockOrder,
}

func runLockOrder(p *Pass) {
	a := &lockAnalysis{
		pass:  p,
		facts: p.Facts,
		info:  p.Pkg.Info,
		edges: map[[2]string][]token.Pos{},
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(fd)
			// Function literals are separate functions: their lock state
			// does not merge into the enclosing flow, so each gets its
			// own CFG and solve.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					a.checkFunc(lit)
				}
				return true
			})
		}
	}
	a.reportInversions()
}

// lockKey is instance-level identity: the leftmost receiver variable
// plus the mutex field (nil field for a plain mutex variable). Two
// receivers' mu fields are different locks; two mentions of the same
// variable are the same lock.
type lockKey struct {
	root  types.Object
	field types.Object
}

// heldInfo describes one held lock: its type-level name (order edges
// and messages) and the acquire site.
type heldInfo struct {
	name  string
	pos   token.Pos
	write bool
}

// lockFact is the dataflow fact: may-held (union join) and must-held
// (intersection join) lock sets.
type lockFact struct {
	may  map[lockKey]heldInfo
	must map[lockKey]heldInfo
}

func (f lockFact) clone() lockFact {
	out := lockFact{
		may:  make(map[lockKey]heldInfo, len(f.may)),
		must: make(map[lockKey]heldInfo, len(f.must)),
	}
	for k, v := range f.may {
		out.may[k] = v
	}
	for k, v := range f.must {
		out.must[k] = v
	}
	return out
}

func lockJoin(a, b lockFact) lockFact {
	out := lockFact{
		may:  make(map[lockKey]heldInfo, len(a.may)+len(b.may)),
		must: make(map[lockKey]heldInfo, len(a.must)),
	}
	for k, v := range a.may {
		out.may[k] = v
	}
	for k, v := range b.may {
		if cur, ok := out.may[k]; !ok || v.pos < cur.pos {
			out.may[k] = v
		}
	}
	for k, v := range a.must {
		if w, ok := b.must[k]; ok {
			if w.pos < v.pos {
				v = w
			}
			out.must[k] = v
		}
	}
	return out
}

func lockEqual(a, b lockFact) bool {
	if len(a.may) != len(b.may) || len(a.must) != len(b.must) {
		return false
	}
	for k, v := range a.may {
		if w, ok := b.may[k]; !ok || w != v {
			return false
		}
	}
	for k, v := range a.must {
		if w, ok := b.must[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func (f *lockFact) acquire(k lockKey, h heldInfo) {
	f.may[k] = h
	f.must[k] = h
}

func (f *lockFact) release(k lockKey) {
	delete(f.may, k)
	delete(f.must, k)
}

type lockAnalysis struct {
	pass  *Pass
	facts *Facts
	info  *types.Info
	// edges accumulates type-level order edges across the whole package
	// during report passes: edges[{A,B}] = sites where B was acquired
	// while A was held.
	edges map[[2]string][]token.Pos
}

func (a *lockAnalysis) checkFunc(fn ast.Node) {
	g := a.facts.CFG(fn)
	in := solveForward(g, lockFact{}, lockJoin, lockEqual, func(blk *Block, f lockFact) lockFact {
		return a.transfer(blk, f, false, 0)
	})
	for _, blk := range g.Blocks {
		a.transfer(blk, in[blk.Index], true, 0)
	}
}

func (a *lockAnalysis) transfer(blk *Block, f lockFact, report bool, depth int) lockFact {
	cur := f.clone()
	for i, n := range blk.Nodes {
		a.node(blk, i, n, &cur, report, depth)
	}
	return cur
}

func (a *lockAnalysis) node(blk *Block, idx int, n ast.Node, f *lockFact, report bool, depth int) {
	switch s := n.(type) {
	case *ast.GoStmt:
		// The spawned call runs on another goroutine: its locking and
		// blocking are its own flow (runLockOrder analyzes the body
		// separately when it is in-package), not the spawner's.
		return
	case *ast.DeferStmt:
		// Effect replays at exit via DeferredCall.
		return
	case *DeferredCall:
		for _, mc := range mutexCallsIn(a.info, s.Defer.Call) {
			a.applyMutex(mc, f, report)
		}
		return
	case *RangeHead:
		return
	case *SelectBlocking:
		if report {
			a.reportBlocked(f, s.Pos(), "a select with no default arm")
		}
		return
	}

	// Blocking points are checked against the incoming held set: the
	// goroutine parks at the op while still holding.
	if report {
		if desc, pos, ok := a.blockingOp(blk, idx, n); ok {
			a.reportBlocked(f, pos, desc)
		}
	}
	for _, mc := range mutexCallsIn(a.info, n) {
		a.applyMutex(mc, f, report)
	}
	// In-package helpers: their summarized acquisitions extend the
	// order relation (and can self-deadlock on an already-held lock);
	// their blocking points count as ours.
	for _, call := range callsIn(n) {
		sum := a.summary(call, depth)
		if sum == nil || !report {
			continue
		}
		callee := calleeObj(a.info, call)
		for _, acq := range sortedAcquires(sum.acquires) {
			for _, h := range sortedHeld(f.must) {
				if h.name == acq {
					a.pass.Reportf(call.Pos(), "call to %s acquires mutex %s, which is already held here (acquired at %s): self-deadlock", callee.Name(), acq, a.position(h.pos))
				} else {
					a.addEdge(h.name, acq, call.Pos())
				}
			}
		}
		if sum.blocksOn != "" && len(f.may) > 0 {
			a.reportBlocked(f, call.Pos(), fmt.Sprintf("a call to %s, which blocks on %s", callee.Name(), sum.blocksOn))
		}
	}
}

// mutexCall is one Lock/RLock/Unlock/RUnlock on a sync mutex.
type mutexCall struct {
	key     lockKey
	name    string
	pos     token.Pos
	acquire bool
	write   bool
}

func (a *lockAnalysis) applyMutex(mc mutexCall, f *lockFact, report bool) {
	if !mc.acquire {
		f.release(mc.key)
		return
	}
	if report {
		// Re-acquiring a held instance: Go mutexes are not reentrant.
		// RLock-after-RLock is tolerated (read locks nest, modulo writer
		// starvation); any pairing involving a write lock is a deadlock.
		if prev, ok := f.must[mc.key]; ok && (prev.write || mc.write) {
			a.pass.Reportf(mc.pos, "mutex %s acquired again while already held on this path (acquired at %s): self-deadlock", mc.name, a.position(prev.pos))
		}
		for _, h := range sortedHeld(f.must) {
			if h.name != mc.name {
				a.addEdge(h.name, mc.name, mc.pos)
			}
		}
	}
	f.acquire(mc.key, heldInfo{name: mc.name, pos: mc.pos, write: mc.write})
}

func (a *lockAnalysis) reportBlocked(f *lockFact, pos token.Pos, desc string) {
	held := sortedHeld(f.may)
	if len(held) == 0 {
		return
	}
	a.pass.Reportf(pos, "mutex %s held across %s: a stall here wedges every contender of the mutex", held[0].name, desc)
}

func (a *lockAnalysis) addEdge(from, to string, pos token.Pos) {
	key := [2]string{from, to}
	a.edges[key] = append(a.edges[key], pos)
}

// reportInversions scans the package-wide order relation for two-lock
// cycles: an A→B edge plus a B→A edge means two goroutines can
// deadlock by interleaving. One diagnostic per direction, each naming
// the opposite site.
func (a *lockAnalysis) reportInversions() {
	keys := make([][2]string, 0, len(a.edges))
	for k := range a.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if k[0] >= k[1] {
			continue // report each unordered pair once, from the lexically smaller direction
		}
		rev := [2]string{k[1], k[0]}
		revSites, ok := a.edges[rev]
		if !ok {
			continue
		}
		sites := a.edges[k]
		sortPos(sites)
		sortPos(revSites)
		a.pass.Reportf(sites[0], "lock order inversion: %s acquired while %s is held, but %s acquires them in the opposite order — two goroutines interleaving these paths deadlock", k[1], k[0], a.position(revSites[0]))
		a.pass.Reportf(revSites[0], "lock order inversion: %s acquired while %s is held, but %s acquires them in the opposite order — two goroutines interleaving these paths deadlock", rev[1], rev[0], a.position(sites[0]))
	}
}

func sortPos(ps []token.Pos) {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
}

func (a *lockAnalysis) position(pos token.Pos) string {
	p := a.pass.Pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

func sortedHeld(m map[lockKey]heldInfo) []heldInfo {
	out := make([]heldInfo, 0, len(m))
	for _, h := range m {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

func sortedAcquires(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// blockingOp classifies a node as a parking point: a channel send or
// receive outside a select arm (a select arm's comm op fires only once
// the select chose it — the head's SelectBlocking already covers the
// wait), or a blocking internal/comm call.
func (a *lockAnalysis) blockingOp(blk *Block, idx int, n ast.Node) (string, token.Pos, bool) {
	inArm := blk.SelectArm && idx == 0
	if s, ok := n.(*ast.SendStmt); ok && !inArm {
		return "a channel send", s.Arrow, true
	}
	var desc string
	var pos token.Pos
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !inArm {
				desc, pos, found = "a channel receive", x.Pos(), true
				return false
			}
		case *ast.CallExpr:
			if name, ok := blockingCommCall(a.info, x); ok {
				desc, pos, found = fmt.Sprintf("a blocking comm call (%s)", name), x.Pos(), true
				return false
			}
		}
		return true
	})
	return desc, pos, found
}

// blockingCommNames is internal/comm's parking API: data-plane
// send/receive, the acknowledged control protocol, and dials.
var blockingCommNames = map[string]bool{
	"Send": true, "Recv": true, "SendBufs": true, "RecvTimeout": true,
	"Expect": true, "SendBlob": true, "RecvBlob": true,
	"SendBlobChunked": true, "RecvBlobChunked": true,
	"DialCtrl": true, "DialCtrlRetry": true,
}

func blockingCommCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeObj(info, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/comm") {
		return "", false
	}
	if !blockingCommNames[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}

// mutexCallsIn finds sync.Mutex / sync.RWMutex Lock/RLock/Unlock/RUnlock
// calls in a node, in syntactic order, skipping function literals
// (their locks are their own flow).
func mutexCallsIn(info *types.Info, n ast.Node) []mutexCall {
	var out []mutexCall
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var acquire, write bool
		switch sel.Sel.Name {
		case "Lock":
			acquire, write = true, true
		case "RLock":
			acquire, write = true, false
		case "Unlock":
			acquire, write = false, true
		case "RUnlock":
			acquire, write = false, false
		default:
			return true
		}
		if !isSyncMutex(info.Types[sel.X].Type) {
			return true
		}
		key, name, ok := lockIdentity(info, sel.X)
		if !ok {
			return true
		}
		out = append(out, mutexCall{key: key, name: name, pos: call.Pos(), acquire: acquire, write: write})
		return true
	})
	return out
}

// callsIn collects the calls in a node, skipping function literals.
func callsIn(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			out = append(out, call)
		}
		return true
	})
	return out
}

// lockIdentity resolves the mutex expression to (instance key,
// type-level name): `mu` → (var mu, "mu"); `p.mu` → ((p, field mu),
// "Pool.mu"); deeper chains key on the leftmost identifier.
func lockIdentity(info *types.Info, e ast.Expr) (lockKey, string, bool) {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return lockKey{}, "", false
		}
		return lockKey{root: obj}, obj.Name(), true
	case *ast.SelectorExpr:
		field := info.Uses[x.Sel]
		fv, isVar := field.(*types.Var)
		if field == nil || !isVar || !fv.IsField() {
			return lockKey{}, "", false
		}
		root := leftmostIdentObj(info, x.X)
		if root == nil {
			return lockKey{}, "", false
		}
		name := field.Name()
		if owner := namedOf(info.Types[x.X].Type); owner != "" {
			name = owner + "." + field.Name()
		}
		return lockKey{root: root, field: field}, name, true
	}
	return lockKey{}, "", false
}

func leftmostIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func namedOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj() != nil {
		return named.Obj().Name()
	}
	return ""
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockSummary is a helper's effect on its caller's lock state: the
// type-level locks it (or its callees, depth-bounded) acquires, and
// the first blocking point inside it, if any.
type lockSummary struct {
	acquires map[string]bool
	blocksOn string
}

func (a *lockAnalysis) summary(call *ast.CallExpr, depth int) *lockSummary {
	if depth >= maxSummaryDepth {
		return nil
	}
	fn := calleeObj(a.info, call)
	decl := a.facts.DeclOf(fn)
	if decl == nil {
		return nil
	}
	facts := a.facts
	if sum, ok := facts.lockSums[fn]; ok {
		return sum
	}
	if facts.lockBusy[fn] {
		return nil
	}
	facts.lockBusy[fn] = true
	defer delete(facts.lockBusy, fn)

	sum := &lockSummary{acquires: map[string]bool{}}
	g := facts.CFG(decl)
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			switch s := n.(type) {
			case *ast.GoStmt, *ast.DeferStmt, *RangeHead:
				continue
			case *DeferredCall:
				continue
			case *SelectBlocking:
				if sum.blocksOn == "" {
					sum.blocksOn = "a select with no default arm"
				}
				continue
			default:
				_ = s
			}
			for _, mc := range mutexCallsIn(a.info, n) {
				if mc.acquire {
					sum.acquires[mc.name] = true
				}
			}
			if desc, _, ok := a.blockingOp(blk, i, n); ok && sum.blocksOn == "" {
				sum.blocksOn = desc
			}
			for _, sub := range callsIn(n) {
				ss := a.summary(sub, depth+1)
				if ss == nil {
					continue
				}
				for name := range ss.acquires {
					sum.acquires[name] = true
				}
				if sum.blocksOn == "" && ss.blocksOn != "" {
					sum.blocksOn = ss.blocksOn
				}
			}
		}
	}
	facts.lockSums[fn] = sum
	return sum
}
