package sgvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufOwn polices the zero-copy data plane's ownership contract (the
// aliasing bug class the SendBufs/Release API introduces):
//
//   - comm.SendBufs transfers ownership of the buffers to the transport;
//     after the call the slab may recycle them concurrently, so reading
//     or mutating a handed-off buffer races with the next superstep's
//     payload.
//   - Message.Release returns the payload to the slab; any later use of
//     m.Payload — or of an alias taken from it — reads recycled memory.
//
// The check is intraprocedural and textual: within a function body, a
// hand-off or Release poisons the variable for the remainder of its
// innermost enclosing block (so uses in sibling branches are not
// flagged), and reassignment un-poisons it. Aliases of the form
// `p := m.Payload` are tracked one level deep, and field-rooted
// buffers (SendBufs(..., ctx.bins)) are tracked per (receiver, field)
// pair so one receiver's hand-off never taints another's. internal/comm
// and internal/bufpool — the layers that implement the contract — are
// exempt.
var BufOwn = &Analyzer{
	Name: "bufown",
	Doc:  "payload or buffer used after Release()/SendBufs ownership hand-off",
	Run:  runBufOwn,
}

func runBufOwn(p *Pass) {
	path := p.Pkg.ImportPath
	if strings.HasSuffix(path, "internal/comm") || strings.HasSuffix(path, "internal/bufpool") {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeBufOwn(p, fd.Body)
		}
	}
}

// poisonEvent marks a variable unusable from Pos to the end of the
// block the poisoning statement sits in.
type poisonEvent struct {
	pos      token.Pos // effect point (end of the poisoning call)
	blockEnd token.Pos // scope: innermost enclosing block's end
	kind     string    // "Release" or "SendBufs"
}

// selKey identifies a field-rooted buffer `x.f` by the pair of its
// receiver variable and field objects, so poisoning ctx.bins never
// bleeds into other.bins (same field, different receiver) or into an
// unrelated variable that happens to share the field's name.
type selKey struct {
	root, field types.Object
}

type bufOwnState struct {
	p *Pass
	// poisoned maps a variable to its hand-off/release events.
	poisoned map[types.Object][]poisonEvent
	// selPoisoned maps a (receiver, field) pair to its hand-off events:
	// SendBufs(..., ctx.bins) poisons exactly that receiver's field.
	selPoisoned map[selKey][]poisonEvent
	// payloadAlias maps `p := m.Payload` aliases to the message var m.
	payloadAlias map[types.Object]types.Object
	// reassigns maps a variable to positions where it is re-bound
	// (fresh value: the poison no longer applies).
	reassigns map[types.Object][]token.Pos
	// selReassigns is the same for field writes: `x.f = ...` re-binds
	// the pair (a re-binding of x itself clears it too, via reassigns).
	selReassigns map[selKey][]token.Pos
}

func analyzeBufOwn(p *Pass, body *ast.BlockStmt) {
	st := &bufOwnState{
		p:            p,
		poisoned:     map[types.Object][]poisonEvent{},
		selPoisoned:  map[selKey][]poisonEvent{},
		payloadAlias: map[types.Object]types.Object{},
		reassigns:    map[types.Object][]token.Pos{},
		selReassigns: map[selKey][]token.Pos{},
	}
	// Pass 1: collect poison events, aliases and reassignments.
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch s := n.(type) {
		case *ast.CallExpr:
			st.collectCall(s, enclosingBlockEnd(stack, body))
		case *ast.AssignStmt:
			st.collectAssign(s)
		}
		return true
	})
	if len(st.poisoned) == 0 && len(st.selPoisoned) == 0 {
		return
	}
	// Pass 2: flag uses inside a poison window.
	check := func(m ast.Node) bool { st.checkUse(m); return true }
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// A plain LHS identifier — or a field selector, x.f = v —
			// is a re-binding, not a use; but writing through an index
			// (buf[0] = x, x.f[0] = v) mutates the handed-off buffer
			// and is checked.
			for _, lhs := range s.Lhs {
				if _, plain := lhs.(*ast.Ident); plain {
					continue
				}
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					if _, plain := sel.X.(*ast.Ident); plain {
						continue
					}
				}
				ast.Inspect(lhs, check)
			}
			for _, rhs := range s.Rhs {
				ast.Inspect(rhs, check)
			}
			return false
		default:
			st.checkUse(n)
		}
		return true
	})
}

// enclosingBlockEnd returns the End of the innermost BlockStmt on the
// stack (the stack top is the current node).
func enclosingBlockEnd(stack []ast.Node, body *ast.BlockStmt) token.Pos {
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			return b.End()
		}
	}
	return body.End()
}

func (st *bufOwnState) collectCall(call *ast.CallExpr, blockEnd token.Pos) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	info := st.p.Pkg.Info
	switch sel.Sel.Name {
	case "Release":
		recv, ok := sel.X.(*ast.Ident)
		if !ok || !isCommNamed(info.Types[sel.X].Type, "Message") {
			return
		}
		if obj := info.Uses[recv]; obj != nil {
			st.poison(obj, call.End(), blockEnd, "Release")
		}
	case "SendBufs":
		if len(call.Args) == 0 {
			return
		}
		last := call.Args[len(call.Args)-1]
		if tv, ok := info.Types[last]; !ok || !isCommNamed(tv.Type, "Buffers") {
			return
		}
		for _, id := range buffersRoots(last) {
			if obj := info.Uses[id]; obj != nil {
				st.poison(obj, call.End(), blockEnd, "SendBufs")
			}
		}
		for _, bsel := range buffersSelectors(last) {
			if key, ok := st.selObjects(bsel); ok {
				st.selPoisoned[key] = append(st.selPoisoned[key],
					poisonEvent{pos: call.End(), blockEnd: blockEnd, kind: "SendBufs"})
			}
		}
	}
}

// selObjects resolves a one-level field selector `x.f` (x a plain
// identifier) to its (receiver, field) object pair. Method selectors
// and deeper chains are not tracked.
func (st *bufOwnState) selObjects(sel *ast.SelectorExpr) (selKey, bool) {
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return selKey{}, false
	}
	info := st.p.Pkg.Info
	root := info.Uses[recv]
	field := info.Uses[sel.Sel]
	if root == nil || field == nil {
		return selKey{}, false
	}
	if v, isVar := field.(*types.Var); !isVar || !v.IsField() {
		return selKey{}, false
	}
	return selKey{root: root, field: field}, true
}

func (st *bufOwnState) poison(obj types.Object, pos, blockEnd token.Pos, kind string) {
	st.poisoned[obj] = append(st.poisoned[obj], poisonEvent{pos: pos, blockEnd: blockEnd, kind: kind})
}

// buffersRoots extracts the identifiers whose buffers a SendBufs
// argument hands off: a plain ident, a comm.Buffers(x) conversion of
// one, or the ident elements of a Buffers{...} literal. Indexing
// expressions (bufs[i]) are deliberately not traced to the root slice —
// only the indexed element is transferred.
func buffersRoots(e ast.Expr) []*ast.Ident {
	switch x := e.(type) {
	case *ast.Ident:
		return []*ast.Ident{x}
	case *ast.CallExpr: // conversion: comm.Buffers(chunks)
		if len(x.Args) == 1 {
			return buffersRoots(x.Args[0])
		}
	case *ast.CompositeLit: // comm.Buffers{a, b}
		var out []*ast.Ident
		for _, elt := range x.Elts {
			if id, ok := elt.(*ast.Ident); ok {
				out = append(out, id)
			}
		}
		return out
	}
	return nil
}

// buffersSelectors is buffersRoots for field-rooted buffers: a `x.f`
// selector handed off directly, through a comm.Buffers(x.f)
// conversion, or as a Buffers{x.f, ...} literal element.
func buffersSelectors(e ast.Expr) []*ast.SelectorExpr {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return []*ast.SelectorExpr{x}
	case *ast.CallExpr: // conversion: comm.Buffers(ctx.bins)
		if len(x.Args) == 1 {
			return buffersSelectors(x.Args[0])
		}
	case *ast.CompositeLit: // comm.Buffers{ctx.frame}
		var out []*ast.SelectorExpr
		for _, elt := range x.Elts {
			if sel, ok := elt.(*ast.SelectorExpr); ok {
				out = append(out, sel)
			}
		}
		return out
	}
	return nil
}

func (st *bufOwnState) collectAssign(as *ast.AssignStmt) {
	info := st.p.Pkg.Info
	// Alias tracking: p := m.Payload.
	if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if sel, ok := as.Rhs[0].(*ast.SelectorExpr); ok && sel.Sel.Name == "Payload" {
			if recv, ok := sel.X.(*ast.Ident); ok && isCommNamed(info.Types[sel.X].Type, "Message") {
				lhs, lok := as.Lhs[0].(*ast.Ident)
				msg := info.Uses[recv]
				if lok && msg != nil {
					if obj := identObject(info, lhs); obj != nil {
						st.payloadAlias[obj] = msg
					}
				}
			}
		}
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := identObject(info, id); obj != nil {
				st.reassigns[obj] = append(st.reassigns[obj], as.End())
			}
			continue
		}
		if sel, ok := lhs.(*ast.SelectorExpr); ok {
			if key, kok := st.selObjects(sel); kok {
				st.selReassigns[key] = append(st.selReassigns[key], as.End())
			}
		}
	}
}

// identObject resolves an identifier whether it defines (:=) or uses
// (=) the variable.
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func (st *bufOwnState) checkUse(n ast.Node) {
	info := st.p.Pkg.Info
	switch s := n.(type) {
	case *ast.SelectorExpr:
		if key, ok := st.selObjects(s); ok {
			if _, bad := st.inSelPoisonWindow(key, s.Pos()); bad {
				st.p.Reportf(s.Pos(), "field buffer used after SendBufs hand-off: ownership passed to the transport and the slab may recycle it concurrently")
				return
			}
		}
		if s.Sel.Name != "Payload" {
			return
		}
		recv, ok := s.X.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Uses[recv]
		if obj == nil {
			return
		}
		if ev, bad := st.inPoisonWindow(obj, s.Pos()); bad {
			st.p.Reportf(s.Pos(), "message payload used after %s: the slab may already have recycled it", ev.kind)
		}
	case *ast.Ident:
		obj := info.Uses[s]
		if obj == nil {
			return
		}
		// A Release poisons only the payload (reached via .Payload or an
		// alias), not the message variable itself — so the direct-ident
		// check applies to SendBufs hand-offs alone.
		if ev, bad := st.inPoisonWindow(obj, s.Pos()); bad && ev.kind == "SendBufs" {
			st.p.Reportf(s.Pos(), "buffer used after SendBufs hand-off: ownership passed to the transport and the slab may recycle it concurrently")
			return
		}
		// Alias of a released message's payload.
		if msg, ok := st.payloadAlias[obj]; ok {
			if ev, bad := st.inPoisonWindow(msg, s.Pos()); bad {
				st.p.Reportf(s.Pos(), "payload alias used after %s: the slab may already have recycled it", ev.kind)
			}
		}
	}
}

// inPoisonWindow reports whether pos falls after a poison event on obj,
// within the event's block, with no intervening re-binding.
func (st *bufOwnState) inPoisonWindow(obj types.Object, pos token.Pos) (poisonEvent, bool) {
	for _, ev := range st.poisoned[obj] {
		if pos <= ev.pos || pos >= ev.blockEnd {
			continue
		}
		cleared := false
		for _, r := range st.reassigns[obj] {
			if r > ev.pos && r <= pos {
				cleared = true
				break
			}
		}
		if !cleared {
			return ev, true
		}
	}
	return poisonEvent{}, false
}

// inSelPoisonWindow is inPoisonWindow for (receiver, field) pairs. A
// poison is cleared by a later write to the same field (x.f = fresh)
// or by re-binding the receiver variable itself (x = other).
func (st *bufOwnState) inSelPoisonWindow(key selKey, pos token.Pos) (poisonEvent, bool) {
	for _, ev := range st.selPoisoned[key] {
		if pos <= ev.pos || pos >= ev.blockEnd {
			continue
		}
		cleared := false
		for _, r := range st.selReassigns[key] {
			if r > ev.pos && r <= pos {
				cleared = true
				break
			}
		}
		for _, r := range st.reassigns[key.root] {
			if r > ev.pos && r <= pos {
				cleared = true
				break
			}
		}
		if !cleared {
			return ev, true
		}
	}
	return poisonEvent{}, false
}

// isCommNamed reports whether t is (a pointer to) the named type
// internal/comm.<name>.
func isCommNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/comm")
}
