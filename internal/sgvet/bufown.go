package sgvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufOwn polices the zero-copy data plane's ownership contract (the
// aliasing bug class the SendBufs/Release API introduces):
//
//   - comm.SendBufs transfers ownership of the buffers to the transport;
//     after the call the slab may recycle them concurrently, so reading
//     or mutating a handed-off buffer races with the next superstep's
//     payload.
//   - Message.Release returns the payload to the slab; any later use of
//     m.Payload — or of an alias taken from it — reads recycled memory.
//
// The check is flow-sensitive: each function body is lowered to a CFG
// (cfg.go) and a may-poison fact is propagated by the forward solver
// (dataflow.go), so a hand-off poisons the variable along every path
// that passes through it — across if/else merges, around loop back
// edges — and a re-binding on a path un-poisons exactly that path.
// Sibling branches stay clean because no path connects them.
//
// The analysis is interprocedural one package deep: an in-package
// helper gets a bottom-up summary ("releases param #i",
// "returns alias of param #i", depth-bounded per maxSummaryDepth), so
//
//	drain(m)        // helper body calls m.Release()
//	use(m.Payload)  // flagged here
//
// is caught even though this function never spells Release. Aliases of
// the form `p := m.Payload` (directly or through an alias-returning
// helper) are tracked, and field-rooted buffers (SendBufs(..., ctx.bins))
// are tracked per (receiver, field) pair so one receiver's hand-off
// never taints another's. internal/comm and internal/bufpool — the
// layers that implement the contract — are exempt.
var BufOwn = &Analyzer{
	Name: "bufown",
	Doc:  "payload or buffer used after Release()/SendBufs ownership hand-off",
	Run:  runBufOwn,
}

func runBufOwn(p *Pass) {
	path := p.Pkg.ImportPath
	if strings.HasSuffix(path, "internal/comm") || strings.HasSuffix(path, "internal/bufpool") {
		return
	}
	a := &bufownAnalysis{pass: p, facts: p.Facts, info: p.Pkg.Info}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(fd)
		}
	}
}

// poison marks a variable (or field pair) as handed off. pos is the
// hand-off call's position; join keeps the earliest so fixpoints are
// deterministic.
type poison struct {
	kind string // "Release" or "SendBufs"
	pos  token.Pos
}

// selKey identifies a field-rooted buffer `x.f` by the pair of its
// receiver variable and field objects, so poisoning ctx.bins never
// bleeds into other.bins (same field, different receiver) or into an
// unrelated variable that happens to share the field's name.
type selKey struct {
	root, field types.Object
}

// bufFact is the dataflow fact: the set of poisoned variables and
// field pairs plus payload-alias edges, all may-union at joins. The
// zero value is the empty fact (entry state).
type bufFact struct {
	vars  map[types.Object]poison
	sels  map[selKey]poison
	alias map[types.Object]types.Object // p := m.Payload  ⇒  alias[p] = m
}

func (f bufFact) clone() bufFact {
	out := bufFact{
		vars:  make(map[types.Object]poison, len(f.vars)),
		sels:  make(map[selKey]poison, len(f.sels)),
		alias: make(map[types.Object]types.Object, len(f.alias)),
	}
	for k, v := range f.vars {
		out.vars[k] = v
	}
	for k, v := range f.sels {
		out.sels[k] = v
	}
	for k, v := range f.alias {
		out.alias[k] = v
	}
	return out
}

func (f *bufFact) setVar(obj types.Object, pz poison) { f.vars[obj] = pz }
func (f *bufFact) setSel(key selKey, pz poison)       { f.sels[key] = pz }
func (f *bufFact) setAlias(p, m types.Object)         { f.alias[p] = m }
func (f *bufFact) clearSel(key selKey)                { delete(f.sels, key) }

// clearVar is a re-binding of obj: its own poison, every field pair
// rooted at it, and any alias edge from it are gone.
func (f *bufFact) clearVar(obj types.Object) {
	delete(f.vars, obj)
	delete(f.alias, obj)
	for key := range f.sels {
		if key.root == obj {
			delete(f.sels, key)
		}
	}
}

// bufJoin unions poisons (may-analysis; earliest position wins for
// determinism) and unions alias edges, dropping an edge the two paths
// disagree on.
func bufJoin(a, b bufFact) bufFact {
	out := a.clone()
	for obj, pz := range b.vars {
		if cur, ok := out.vars[obj]; !ok || pz.pos < cur.pos {
			out.vars[obj] = pz
		}
	}
	for key, pz := range b.sels {
		if cur, ok := out.sels[key]; !ok || pz.pos < cur.pos {
			out.sels[key] = pz
		}
	}
	for p, m := range b.alias {
		if cur, ok := out.alias[p]; ok && cur != m {
			delete(out.alias, p)
		} else {
			out.alias[p] = m
		}
	}
	return out
}

func bufEqual(a, b bufFact) bool {
	if len(a.vars) != len(b.vars) || len(a.sels) != len(b.sels) || len(a.alias) != len(b.alias) {
		return false
	}
	for k, v := range a.vars {
		if w, ok := b.vars[k]; !ok || w != v {
			return false
		}
	}
	for k, v := range a.sels {
		if w, ok := b.sels[k]; !ok || w != v {
			return false
		}
	}
	for k, v := range a.alias {
		if w, ok := b.alias[k]; !ok || w != v {
			return false
		}
	}
	return true
}

type bufownAnalysis struct {
	pass  *Pass
	facts *Facts
	info  *types.Info
}

func (a *bufownAnalysis) checkFunc(fd *ast.FuncDecl) {
	g := a.facts.CFG(fd)
	in := solveForward(g, bufFact{}, bufJoin, bufEqual, func(blk *Block, f bufFact) bufFact {
		return a.transfer(blk, f, false, 0)
	})
	// Reporting pass: re-apply the transfer with diagnostics on, per
	// block, against the solved in-facts — each use is checked exactly
	// once, against the join over every path that reaches it.
	for _, blk := range g.Blocks {
		a.transfer(blk, in[blk.Index], true, 0)
	}
}

func (a *bufownAnalysis) transfer(blk *Block, f bufFact, report bool, depth int) bufFact {
	cur := f.clone()
	for _, n := range blk.Nodes {
		a.node(n, &cur, report, depth)
	}
	return cur
}

// node checks a CFG node's uses against the incoming fact (so a
// hand-off call never flags its own arguments) and then applies its
// effects.
func (a *bufownAnalysis) node(n ast.Node, f *bufFact, report bool, depth int) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if report {
			a.checkAssign(s, f)
		}
		a.applyEffects(s, f, depth)

	case *ast.DeferStmt:
		// Registration point: the callee and arguments are evaluated
		// here; the call's effect replays at exit (DeferredCall), so
		// `defer m.Release(); use(m.Payload)` stays legal.
		if report {
			a.checkNode(s.Call.Fun, f)
			for _, arg := range s.Call.Args {
				a.checkNode(arg, f)
			}
		}

	case *DeferredCall:
		a.applyCall(s.Defer.Call, f, depth)

	case *RangeHead:
		if report {
			a.checkNode(s.Range.X, f)
		}
		// Key/value are rebound on every iteration, so poison from a
		// previous iteration's body does not survive the back edge:
		// `for _, m := range msgs { use(m.Payload); m.Release() }` is
		// clean, while a poison on the ranged collection itself is not.
		for _, e := range []ast.Expr{s.Range.Key, s.Range.Value} {
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := identObject(a.info, id); obj != nil {
				f.clearVar(obj)
			}
		}

	case *SelectBlocking:
		// lockorder's marker; no buffer semantics.

	default:
		if report {
			a.checkNode(n, f)
		}
		a.applyEffects(n, f, depth)
	}
}

// checkAssign applies the assignment use rules: a plain LHS identifier
// — or a one-level field selector, x.f = v — is a re-binding, not a
// use; but writing through an index (buf[0] = x) mutates the
// handed-off buffer and is checked.
func (a *bufownAnalysis) checkAssign(s *ast.AssignStmt, f *bufFact) {
	for _, lhs := range s.Lhs {
		if _, plain := lhs.(*ast.Ident); plain {
			continue
		}
		if sel, ok := lhs.(*ast.SelectorExpr); ok {
			if _, plain := sel.X.(*ast.Ident); plain {
				continue
			}
		}
		a.checkNode(lhs, f)
	}
	for _, rhs := range s.Rhs {
		a.checkNode(rhs, f)
	}
}

// checkNode walks a node flagging uses of poisoned state. Nested
// assignments (inside function literals) get the same LHS treatment as
// top-level ones.
func (a *bufownAnalysis) checkNode(n ast.Node, f *bufFact) {
	ast.Inspect(n, func(m ast.Node) bool {
		if as, ok := m.(*ast.AssignStmt); ok {
			a.checkAssign(as, f)
			return false
		}
		a.checkUse(m, f)
		return true
	})
}

func (a *bufownAnalysis) checkUse(n ast.Node, f *bufFact) {
	info := a.info
	switch s := n.(type) {
	case *ast.SelectorExpr:
		if key, ok := selObjects(info, s); ok {
			if _, bad := f.sels[key]; bad {
				a.pass.Reportf(s.Pos(), "field buffer used after SendBufs hand-off: ownership passed to the transport and the slab may recycle it concurrently")
				return
			}
		}
		if s.Sel.Name != "Payload" {
			return
		}
		recv, ok := s.X.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Uses[recv]
		if obj == nil {
			return
		}
		if pz, bad := f.vars[obj]; bad {
			a.pass.Reportf(s.Pos(), "message payload used after %s: the slab may already have recycled it", pz.kind)
		}
	case *ast.Ident:
		obj := info.Uses[s]
		if obj == nil {
			return
		}
		// A Release poisons only the payload (reached via .Payload or an
		// alias), not the message variable itself — so the direct-ident
		// check applies to SendBufs hand-offs alone.
		if pz, bad := f.vars[obj]; bad && pz.kind == "SendBufs" {
			a.pass.Reportf(s.Pos(), "buffer used after SendBufs hand-off: ownership passed to the transport and the slab may recycle it concurrently")
			return
		}
		if msg, ok := f.alias[obj]; ok {
			if pz, bad := f.vars[msg]; bad {
				a.pass.Reportf(s.Pos(), "payload alias used after %s: the slab may already have recycled it", pz.kind)
			}
		}
	}
}

// applyEffects applies every hand-off call and assignment inside the
// node, in syntactic order — sufficient because one CFG node contains
// at most straight-line expression evaluation.
func (a *bufownAnalysis) applyEffects(n ast.Node, f *bufFact, depth int) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.CallExpr:
			a.applyCall(s, f, depth)
		case *ast.AssignStmt:
			a.applyAssign(s, f, depth)
		case *ast.ValueSpec:
			// `var bufs [][]byte` re-declares: in a loop body the same
			// object is re-bound to a fresh value every iteration, so
			// poison must not survive the back edge.
			a.applyValueSpec(s, f)
		case *ast.DeferStmt:
			// A defer nested in a function literal is that literal's
			// business; do not replay its call here.
			return false
		}
		return true
	})
}

func (a *bufownAnalysis) applyCall(call *ast.CallExpr, f *bufFact, depth int) {
	info := a.info
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Release":
			recv, ok := sel.X.(*ast.Ident)
			if !ok || !isCommNamed(info.Types[sel.X].Type, "Message") {
				return
			}
			if obj := info.Uses[recv]; obj != nil {
				f.setVar(obj, poison{kind: "Release", pos: call.Pos()})
			}
			return
		case "SendBufs":
			if len(call.Args) == 0 {
				return
			}
			last := call.Args[len(call.Args)-1]
			if tv, ok := info.Types[last]; !ok || !isCommNamed(tv.Type, "Buffers") {
				return
			}
			for _, id := range buffersRoots(last) {
				if obj := info.Uses[id]; obj != nil {
					f.setVar(obj, poison{kind: "SendBufs", pos: call.Pos()})
				}
			}
			for _, bsel := range buffersSelectors(last) {
				if key, ok := selObjects(info, bsel); ok {
					f.setSel(key, poison{kind: "SendBufs", pos: call.Pos()})
				}
			}
			return
		}
	}
	// In-package helper: apply its bottom-up summary ("releases param
	// #i") to the matching arguments.
	sum := a.summary(call, depth)
	if sum == nil || len(sum.releases) == 0 {
		return
	}
	args := callArgs(call)
	for idx, kind := range sum.releases {
		if idx >= len(args) {
			continue
		}
		if id := rootIdent(args[idx]); id != nil {
			if obj := info.Uses[id]; obj != nil {
				f.setVar(obj, poison{kind: kind, pos: call.Pos()})
			}
		}
	}
}

// rootIdent strips parens and a leading & — `m`, `(m)`, `&m` all root
// at the identifier m — so helper(&m) poisons the same object
// helper(m) would.
func rootIdent(e ast.Expr) *ast.Ident {
	e = unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = unparen(ue.X)
	}
	id, _ := e.(*ast.Ident)
	return id
}

func (a *bufownAnalysis) applyAssign(as *ast.AssignStmt, f *bufFact, depth int) {
	info := a.info
	// Re-bindings first: an LHS write gives the variable (or field
	// pair) a fresh value, clearing old poison and stale aliases.
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := identObject(info, id); obj != nil {
				f.clearVar(obj)
			}
			continue
		}
		if sel, ok := lhs.(*ast.SelectorExpr); ok {
			if key, kok := selObjects(info, sel); kok {
				f.clearSel(key)
			}
		}
	}
	// Then new alias edges: p := m.Payload, or p := helper(m) where the
	// helper's summary says its result aliases a parameter's payload.
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, lok := as.Lhs[0].(*ast.Ident)
	if !lok {
		return
	}
	obj := identObject(info, lhs)
	if obj == nil {
		return
	}
	switch rhs := unparen(as.Rhs[0]).(type) {
	case *ast.SelectorExpr:
		if rhs.Sel.Name != "Payload" {
			return
		}
		if recv, ok := rhs.X.(*ast.Ident); ok && isCommNamed(info.Types[rhs.X].Type, "Message") {
			if msg := info.Uses[recv]; msg != nil {
				f.setAlias(obj, msg)
			}
		}
	case *ast.CallExpr:
		sum := a.summary(rhs, depth)
		if sum == nil || sum.aliasOf < 0 {
			return
		}
		args := callArgs(rhs)
		if sum.aliasOf >= len(args) {
			return
		}
		if id := rootIdent(args[sum.aliasOf]); id != nil {
			if msg := info.Uses[id]; msg != nil {
				f.setAlias(obj, msg)
			}
		}
	}
}

// applyValueSpec treats a var declaration like the := it is: every
// declared name is freshly bound, and `var p = m.Payload` records the
// same alias edge an assignment would.
func (a *bufownAnalysis) applyValueSpec(vs *ast.ValueSpec, f *bufFact) {
	info := a.info
	for _, name := range vs.Names {
		if obj := info.Defs[name]; obj != nil {
			f.clearVar(obj)
		}
	}
	if len(vs.Names) != 1 || len(vs.Values) != 1 {
		return
	}
	sel, ok := unparen(vs.Values[0]).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Payload" {
		return
	}
	if recv, rok := sel.X.(*ast.Ident); rok && isCommNamed(info.Types[sel.X].Type, "Message") {
		if msg := info.Uses[recv]; msg != nil {
			if obj := info.Defs[vs.Names[0]]; obj != nil {
				f.setAlias(obj, msg)
			}
		}
	}
}

// bufownSummary is a helper function's ownership effect as seen by its
// callers. Parameter indexes are receiver-first (callArgs order).
type bufownSummary struct {
	releases map[int]string // param index → poison kind at some exit
	aliasOf  int            // result aliases param #i's payload; -1 none
}

// summary resolves the call's callee to an in-package declaration and
// returns its memoized bottom-up summary, or nil (external callee,
// recursion, or depth exhausted — the analysis degrades to
// intraprocedural there).
func (a *bufownAnalysis) summary(call *ast.CallExpr, depth int) *bufownSummary {
	if depth >= maxSummaryDepth {
		return nil
	}
	fn := calleeObj(a.info, call)
	decl := a.facts.DeclOf(fn)
	if decl == nil {
		return nil
	}
	facts := a.facts
	if sum, ok := facts.bufownSums[fn]; ok {
		return sum
	}
	if facts.bufownBusy[fn] {
		return nil
	}
	facts.bufownBusy[fn] = true
	defer delete(facts.bufownBusy, fn)

	g := facts.CFG(decl)
	in := solveForward(g, bufFact{}, bufJoin, bufEqual, func(blk *Block, f bufFact) bufFact {
		return a.transfer(blk, f, false, depth+1)
	})
	var exitFact bufFact
	if g.ExitReachable() {
		exitFact = a.transfer(g.Exit, in[g.Exit.Index], false, depth+1)
	}
	sum := &bufownSummary{releases: map[int]string{}, aliasOf: -1}
	params := funcParams(a.info, decl)
	for i, p := range params {
		if p == nil {
			continue
		}
		if pz, ok := exitFact.vars[p]; ok {
			sum.releases[i] = pz.kind
		}
	}
	sum.aliasOf = returnAliasParam(a.info, decl, params)
	facts.bufownSums[fn] = sum
	return sum
}

// returnAliasParam reports which parameter (receiver-first index) the
// function's result aliases: every alias-shaped return — the parameter
// itself, param.Payload, or a reslice of either — must agree, and the
// function must return exactly one value there. -1 when no return
// aliases a parameter.
func returnAliasParam(info *types.Info, decl *ast.FuncDecl, params []types.Object) int {
	res := -1
	conflict := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if i := aliasedParam(info, ret.Results[0], params); i >= 0 {
			if res >= 0 && res != i {
				conflict = true
			}
			res = i
		}
		return true
	})
	if conflict {
		return -1
	}
	return res
}

func aliasedParam(info *types.Info, e ast.Expr, params []types.Object) int {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return -1
		}
		for i, p := range params {
			if p != nil && p == obj {
				return i
			}
		}
	case *ast.SelectorExpr:
		if x.Sel.Name != "Payload" {
			return -1
		}
		if id, ok := x.X.(*ast.Ident); ok && isCommNamed(info.Types[x.X].Type, "Message") {
			obj := info.Uses[id]
			for i, p := range params {
				if p != nil && p == obj {
					return i
				}
			}
		}
	case *ast.SliceExpr:
		return aliasedParam(info, x.X, params)
	}
	return -1
}

// selObjects resolves a one-level field selector `x.f` (x a plain
// identifier) to its (receiver, field) object pair. Method selectors
// and deeper chains are not tracked.
func selObjects(info *types.Info, sel *ast.SelectorExpr) (selKey, bool) {
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return selKey{}, false
	}
	root := info.Uses[recv]
	field := info.Uses[sel.Sel]
	if root == nil || field == nil {
		return selKey{}, false
	}
	if v, isVar := field.(*types.Var); !isVar || !v.IsField() {
		return selKey{}, false
	}
	return selKey{root: root, field: field}, true
}

// buffersRoots extracts the identifiers whose buffers a SendBufs
// argument hands off: a plain ident, a comm.Buffers(x) conversion of
// one, or the ident elements of a Buffers{...} literal. Indexing
// expressions (bufs[i]) are deliberately not traced to the root slice —
// only the indexed element is transferred.
func buffersRoots(e ast.Expr) []*ast.Ident {
	switch x := e.(type) {
	case *ast.Ident:
		return []*ast.Ident{x}
	case *ast.CallExpr: // conversion: comm.Buffers(chunks)
		if len(x.Args) == 1 {
			return buffersRoots(x.Args[0])
		}
	case *ast.CompositeLit: // comm.Buffers{a, b}
		var out []*ast.Ident
		for _, elt := range x.Elts {
			if id, ok := elt.(*ast.Ident); ok {
				out = append(out, id)
			}
		}
		return out
	}
	return nil
}

// buffersSelectors is buffersRoots for field-rooted buffers: a `x.f`
// selector handed off directly, through a comm.Buffers(x.f)
// conversion, or as a Buffers{x.f, ...} literal element.
func buffersSelectors(e ast.Expr) []*ast.SelectorExpr {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return []*ast.SelectorExpr{x}
	case *ast.CallExpr: // conversion: comm.Buffers(ctx.bins)
		if len(x.Args) == 1 {
			return buffersSelectors(x.Args[0])
		}
	case *ast.CompositeLit: // comm.Buffers{ctx.frame}
		var out []*ast.SelectorExpr
		for _, elt := range x.Elts {
			if sel, ok := elt.(*ast.SelectorExpr); ok {
				out = append(out, sel)
			}
		}
		return out
	}
	return nil
}

// identObject resolves an identifier whether it defines (:=) or uses
// (=) the variable.
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isCommNamed reports whether t is (a pointer to) the named type
// internal/comm.<name>.
func isCommNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/comm")
}
