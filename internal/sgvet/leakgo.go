package sgvet

import (
	"go/ast"
)

// LeakGo convicts goroutine launches whose body can never exit: the
// spawned function's CFG (cfg.go) has no path from entry to the
// function exit — an unconditional infinite loop with no return, no
// loop-breaking condition, and no terminating call. Such a goroutine
// ignores every shutdown signal by construction (no reachable exit
// means no context, done-channel, or stop-flag arm actually leaves the
// loop) and leaks for the process lifetime; under the worker fleet's
// rejoin protocol it also keeps a stale epoch pinned forever.
//
// The CFG makes the classic near-miss visible: in
//
//	go func() {
//	    for {
//	        select {
//	        case <-stop:
//	            break // exits the select, not the for — loop never ends
//	        case w := <-work:
//	            handle(w)
//	        }
//	    }
//	}()
//
// the break edge lands on the select's follow block, which loops
// straight back to the head, so the exit stays unreachable and the
// launch is flagged. Changing break to return makes the exit reachable
// and the diagnostic disappear.
//
// The body is resolved at the spawn site: a function literal directly,
// a named in-package function or method through the declaration index.
// External callees are skipped (their loops are their package's
// business). A goroutine that can only end by panicking still counts
// as exiting — panic edges terminate the path — so only genuinely
// unbounded loops are reported.
var LeakGo = &Analyzer{
	Name: "leakgo",
	Doc:  "goroutine whose body has no reachable exit (leaks for the process lifetime)",
	Run:  runLeakGo,
}

func runLeakGo(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var fn ast.Node
			switch fun := unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				fn = fun
			default:
				if obj := calleeObj(p.Pkg.Info, gs.Call); obj != nil {
					if decl := p.Facts.DeclOf(obj); decl != nil {
						fn = decl
					}
				}
			}
			if fn == nil {
				return true
			}
			if g := p.Facts.CFG(fn); !g.ExitReachable() {
				p.Reportf(gs.Pos(), "goroutine body has no reachable exit: every path loops forever, so no context, done-channel, or stop condition can ever terminate it and it leaks for the process lifetime")
			}
			return true
		})
	}
}
