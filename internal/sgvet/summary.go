package sgvet

import (
	"go/ast"
	"go/types"

	"repro/internal/loader"
)

// Facts is the per-package cache the engine-backed analyzers share:
// the function-declaration index, memoized CFGs, and the bottom-up
// interprocedural summaries each analysis computes on demand. One
// Facts value is built per package per Run and handed to every
// analyzer through the Pass, so bufown's summary of a helper is
// computed once even when lockorder walks the same call site.
//
// Summaries are depth-bounded (maxSummaryDepth, the same discipline as
// the §4 analysis in internal/analyzer/typed) and memoized with an
// in-progress marker, so mutual recursion degrades to "no summary"
// instead of looping.
type Facts struct {
	pkg   *loader.Package
	decls map[types.Object]*ast.FuncDecl

	cfgs map[ast.Node]*CFG

	bufownSums map[types.Object]*bufownSummary
	bufownBusy map[types.Object]bool
	lockSums   map[types.Object]*lockSummary
	lockBusy   map[types.Object]bool
}

// maxSummaryDepth bounds transitive helper-summary computation: a
// release (or lock acquisition) more than four in-package calls deep
// is out of scope, matching maxHelperDepth in internal/analyzer/typed.
const maxSummaryDepth = 4

func newFacts(pkg *loader.Package) *Facts {
	f := &Facts{
		pkg:        pkg,
		decls:      map[types.Object]*ast.FuncDecl{},
		cfgs:       map[ast.Node]*CFG{},
		bufownSums: map[types.Object]*bufownSummary{},
		bufownBusy: map[types.Object]bool{},
		lockSums:   map[types.Object]*lockSummary{},
		lockBusy:   map[types.Object]bool{},
	}
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				f.decls[obj] = fd
			}
		}
	}
	return f
}

// CFG returns the memoized control-flow graph of a function
// declaration or literal.
func (f *Facts) CFG(fn ast.Node) *CFG {
	if g, ok := f.cfgs[fn]; ok {
		return g
	}
	g := FuncCFG(fn)
	f.cfgs[fn] = g
	return g
}

// DeclOf resolves a function object to its in-package declaration, or
// nil for externals, interface methods, and func-typed values.
func (f *Facts) DeclOf(obj types.Object) *ast.FuncDecl {
	if obj == nil {
		return nil
	}
	return f.decls[obj]
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeObj resolves the object a call invokes: a plain function for
// ident calls, the method object for selector calls. Returns nil for
// func-typed values, type conversions resolve to the type object
// (filtered by the *types.Func assertion).
func calleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// callArgs returns a call's effective argument expressions with the
// receiver first for method calls — the summary convention: parameter
// #0 of a method summary is the receiver.
func callArgs(call *ast.CallExpr) []ast.Expr {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		args := make([]ast.Expr, 0, len(call.Args)+1)
		args = append(args, sel.X)
		return append(args, call.Args...)
	}
	return call.Args
}

// funcParams returns the declared parameter objects of fd in summary
// order: receiver first when present, then the parameter list.
// Unnamed and blank parameters yield nil entries so indexes stay
// positional.
func funcParams(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range field.Names {
				out = append(out, info.Defs[name])
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return out
}
