package sgvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// SnapDet enforces the bit-identical recovery contract from PR 2: a
// checkpoint blob, fingerprint, or stats emission assembled by ranging
// over a map is nondeterministic (Go randomizes map iteration), so a
// restart can produce a byte-different snapshot of identical state —
// breaking resume-on-identical-query, content fingerprints, and every
// test that asserts recovered == uninterrupted.
//
// Two rules:
//
//  1. Inside deterministic contexts — functions or methods whose name
//     or receiver smells like serialization (Encode/Marshal/Snapshot/
//     Checkpoint/Fingerprint/Stats/Status/Write/Dump/Export/Serialize,
//     or receivers like *Codec/*Store) — a range over a map that feeds
//     an order-sensitive sink is flagged: a write to an io.Writer /
//     builder / hash, a string or floating-point accumulation, or an
//     append whose slice is not subsequently sorted in the same
//     function.
//  2. Anywhere — a function that *returns* a slice populated by map
//     iteration without sorting it first leaks nondeterministic order
//     into its API.
//
// Iterating a map to build another map, to delete keys, or to fold an
// order-insensitive reduction (integer sums, max) is fine and not
// flagged.
var SnapDet = &Analyzer{
	Name: "snapdet",
	Doc:  "nondeterministic map iteration in snapshot/checkpoint/stats emission",
	Run:  runSnapDet,
}

var (
	snapdetNameRe = regexp.MustCompile(`(?i)encode|marshal|snapshot|checkpoint|fingerprint|stats|status|write|dump|export|serialize|emit`)
	snapdetRecvRe = regexp.MustCompile(`(?i)codec|store|registry|tracer`)
)

func runSnapDet(p *Pass) {
	p.inspectFiles(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		deterministic := snapdetNameRe.MatchString(fd.Name.Name)
		if !deterministic && fd.Recv != nil {
			if tn := recvTypeName(fd.Recv); tn != "" && snapdetRecvRe.MatchString(tn) {
				deterministic = true
			}
		}
		snapdetFunc(p, fd.Body, deterministic)
		return true
	})
}

func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// snapdetFunc checks every map-range loop in one function body.
func snapdetFunc(p *Pass, body *ast.BlockStmt, deterministic bool) {
	info := p.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(p, body, rng, deterministic)
		return true
	})
}

func checkMapRange(p *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, deterministic bool) {
	info := p.Pkg.Info

	// outerVar resolves an identifier to a variable declared outside
	// the loop (loop-carried sink target).
	outerVar := func(e ast.Expr) *types.Var {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := info.Uses[id].(*types.Var)
		if ok && v != nil && (v.Pos() < rng.Pos() || v.Pos() > rng.End()) {
			return v
		}
		return nil
	}

	var appendTargets []*types.Var
	orderSink := token.NoPos

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			switch fun := s.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && len(s.Args) > 0 {
					if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
						if v := outerVar(s.Args[0]); v != nil {
							appendTargets = append(appendTargets, v)
						}
					}
				}
			case *ast.SelectorExpr:
				// Writer/builder/hash emission methods, and fmt.Fprint*.
				switch fun.Sel.Name {
				case "Write", "WriteString", "WriteByte", "WriteRune":
					if orderSink == token.NoPos {
						orderSink = s.Pos()
					}
				case "Fprintf", "Fprint", "Fprintln":
					if f, ok := info.Uses[fun.Sel].(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
						if orderSink == token.NoPos {
							orderSink = s.Pos()
						}
					}
				}
			}
		case *ast.AssignStmt:
			// String concatenation or floating-point accumulation is
			// order-sensitive; integer accumulation is not.
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
				if v := outerVar(s.Lhs[0]); v != nil {
					if b, ok := v.Type().Underlying().(*types.Basic); ok &&
						b.Info()&(types.IsString|types.IsFloat) != 0 {
						if orderSink == token.NoPos {
							orderSink = s.Pos()
						}
					}
				}
			}
		}
		return true
	})

	if deterministic && orderSink != token.NoPos {
		p.Reportf(rng.Pos(), "map iteration feeds an order-sensitive sink (line %d): iteration order is random, so emitted bytes differ run to run — collect and sort keys first",
			p.Pkg.Fset.Position(orderSink).Line)
	}

	for _, v := range appendTargets {
		sorted := sortedAfter(p, body, rng, v)
		returned := returnedAfter(p, body, rng, v)
		switch {
		case sorted:
		case deterministic:
			p.Reportf(rng.Pos(), "map iteration appends to %s which is never sorted: snapshot/stats bytes become nondeterministic — sort before emitting", v.Name())
		case returned:
			p.Reportf(rng.Pos(), "map iteration populates returned slice %s without sorting: callers observe random order — sort before returning", v.Name())
		}
	}
}

// sortedAfter reports whether v is passed to a sort/slices function
// after the loop within the same body.
func sortedAfter(p *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, v *types.Var) bool {
	info := p.Pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || f.Pkg() == nil {
			return true
		}
		if path := f.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && info.Uses[id] == v {
				found = true
			}
		}
		return true
	})
	return found
}

// returnedAfter reports whether v appears in a return statement after
// the loop.
func returnedAfter(p *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, v *types.Var) bool {
	info := p.Pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() < rng.End() {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok && info.Uses[id] == v {
				found = true
			}
		}
		return true
	})
	return found
}
