package sgvet

import "repro/internal/analyzer/typed"

// DepBreak enforces the paper's §4 invariant: every early exit from a
// dense-signal UDF's neighbor traversal must be announced with
// ctx.EmitDep(), or downstream machines keep scanning neighbors the
// algorithm already resolved — and, worse, algorithms that *rely* on
// the skip (K-core's counting cut-off, sampling's prefix walk) silently
// compute wrong byte counts or wrong answers on >1 machines. This is
// the uninstrumented-UDF trap: code that compiles, runs, and degrades
// the guarantee without any error.
//
// The check runs the type-resolved analysis, so it sees through aliased
// contexts and neighbor slices and through helper functions the slice
// is handed to (interprocedural breaks). Intentional machine-local
// exits are declared with //sgc:local on the break.
var DepBreak = &Analyzer{
	Name: "depbreak",
	Doc:  "neighbor-loop early exit without ctx.EmitDep() in a signal UDF",
	Run:  runDepBreak,
}

func runDepBreak(p *Pass) {
	rep := typed.AnalyzePackage(p.Pkg)
	for _, f := range rep.Funcs {
		if f.Instrumented != typed.InstrumentedNo && f.Instrumented != typed.InstrumentedPartial {
			continue
		}
		for _, l := range f.Loops {
			for _, line := range l.UncoveredExits {
				p.ReportAt(f.Path, line, 1,
					"signal UDF %s: neighbor-loop early exit without ctx.EmitDep() — the loop-carried dependency is not propagated (run `sgc instrument`, or mark a machine-local exit with //sgc:local)", f.Name)
			}
		}
		for _, ib := range f.InterBreaks {
			if ib.Covered {
				continue
			}
			p.ReportAt(f.Path, ib.CallLine, 1,
				"signal UDF %s: helper %s exits neighbor traversal early (line %d) without ctx.EmitDep() — interprocedural loop-carried dependency is not propagated", f.Name, ib.Callee, ib.ExitLine)
		}
	}
}
